// Package text provides the lexical analysis used by PivotE's entity
// search engine: Unicode-aware tokenization, lowercasing and a small
// English stopword list. Analysis is deliberately simple (no stemming):
// the paper's retrieval model is a term-based mixture of language models
// and entity names in KGs are near-verbatim, so aggressive normalization
// would hurt precision.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase tokens at non-letter/digit boundaries.
// Underscores separate tokens too, so IRI local names such as
// "Forrest_Gump" analyze identically to their labels.
func Tokenize(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
			continue
		}
		flush()
	}
	flush()
	return out
}

// stopwords is a minimal English function-word list; it is intentionally
// short because entity labels are title-like and rarely contain them.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "in": true, "on": true,
	"at": true, "by": true, "for": true, "to": true, "and": true, "or": true,
	"is": true, "was": true, "are": true, "be": true, "with": true, "as": true,
	"it": true, "its": true, "that": true, "this": true, "from": true,
}

// IsStopword reports whether the lowercase token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// Analyze tokenizes s and removes stopwords. If every token is a
// stopword the tokens are kept, so queries like "The Who" stay matchable.
func Analyze(s string) []string {
	toks := Tokenize(s)
	kept := make([]string, 0, len(toks))
	for _, t := range toks {
		if !stopwords[t] {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		return toks
	}
	return kept
}

// AnalyzeAll analyzes each string and concatenates the token streams.
func AnalyzeAll(ss []string) []string {
	var out []string
	for _, s := range ss {
		out = append(out, Analyze(s)...)
	}
	return out
}
