// Package errs holds the engine's typed error — a kind plus a message —
// as a dependency-free leaf so that low-level packages (search, index)
// can return typed errors without importing the core engine. Package core
// re-exports the type and kinds under its own name (core.Error is a type
// alias), so transports keep matching on core.Error and see errors from
// every layer uniformly.
package errs

import (
	"context"
	"errors"
	"fmt"
)

// Kind classifies engine errors so transports can map them uniformly
// (the HTTP server translates kinds to status codes, the wire envelope
// carries the kind string verbatim).
type Kind string

const (
	// KindNotFound: the operation references an entity, feature anchor
	// or step that does not exist in the graph or session.
	KindNotFound Kind = "not_found"
	// KindInvalid: the operation itself is malformed — unknown op kind,
	// unparsable feature, bad field selector, out-of-range revisit,
	// invalid retrieval parameters.
	KindInvalid Kind = "invalid"
	// KindCanceled: the caller's context was canceled (or its deadline
	// exceeded) while the operation was in flight. The session state is
	// unchanged.
	KindCanceled Kind = "canceled"
	// KindInternal: everything else.
	KindInternal Kind = "internal"
	// KindUnavailable: a backend the operation depends on (a shard behind
	// the scatter-gather router) could not be reached after retry. The
	// request did not complete; the caller may retry later.
	KindUnavailable Kind = "unavailable"
)

// Error is the engine's typed error: a kind plus a human-readable
// message, optionally wrapping a cause.
type Error struct {
	Kind Kind
	Msg  string
	Err  error
}

func (e *Error) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	if e.Err != nil {
		return e.Err.Error()
	}
	return string(e.Kind)
}

func (e *Error) Unwrap() error { return e.Err }

// Errf builds a typed error with a formatted message.
func Errf(kind Kind, format string, args ...interface{}) *Error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// KindOf extracts the kind of an error: the Error's own kind when it is
// (or wraps) one, KindCanceled for context cancellation/deadline errors,
// KindInternal for anything else, and "" for nil.
func KindOf(err error) Kind {
	if err == nil {
		return ""
	}
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Kind
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return KindCanceled
	}
	return KindInternal
}
