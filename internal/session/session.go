// Package session models PivotE's exploratory search session: the current
// query (keywords + example entities + semantic-feature conditions, the
// query area of Fig. 3-a/b), the timeline of past queries that supports
// revisiting (Fig. 3-g), and the exploratory path visualization (Fig. 4).
//
// A session is a pure state machine — it records what the user did and
// what the query became; executing queries is the engine's job
// (internal/core). That separation is what lets the timeline replay any
// historical query verbatim.
package session

import (
	"fmt"

	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

// Query is a reformulable PivotE query: free-text keywords, example
// ("seed") entities, and semantic-feature conditions. Any combination may
// be present.
type Query struct {
	Keywords string
	Seeds    []rdf.TermID
	Features []semfeat.Feature
}

// Clone returns a deep copy, so stored snapshots cannot alias the live
// query.
func (q Query) Clone() Query {
	return Query{
		Keywords: q.Keywords,
		Seeds:    append([]rdf.TermID(nil), q.Seeds...),
		Features: append([]semfeat.Feature(nil), q.Features...),
	}
}

// IsEmpty reports whether the query has no conditions at all.
func (q Query) IsEmpty() bool {
	return q.Keywords == "" && len(q.Seeds) == 0 && len(q.Features) == 0
}

// ActionKind enumerates the user interactions the paper's interface
// supports.
type ActionKind int

const (
	// ActionSubmit is a keyword query submission (Fig. 3-a).
	ActionSubmit ActionKind = iota
	// ActionAddSeed adds an example entity to the query (investigation).
	ActionAddSeed
	// ActionRemoveSeed removes an example entity.
	ActionRemoveSeed
	// ActionAddFeature adds a semantic-feature condition.
	ActionAddFeature
	// ActionRemoveFeature removes a semantic-feature condition.
	ActionRemoveFeature
	// ActionLookup is a profile view of an entity (Fig. 3-d); it does not
	// change the query.
	ActionLookup
	// ActionPivot switches the search domain through a feature's anchor
	// entity (browse, §3.2).
	ActionPivot
	// ActionRevisit restores a historical query from the timeline.
	ActionRevisit
)

var actionNames = map[ActionKind]string{
	ActionSubmit:        "submit",
	ActionAddSeed:       "add-entity",
	ActionRemoveSeed:    "remove-entity",
	ActionAddFeature:    "add-feature",
	ActionRemoveFeature: "remove-feature",
	ActionLookup:        "lookup",
	ActionPivot:         "pivot",
	ActionRevisit:       "revisit",
}

func (k ActionKind) String() string {
	if s, ok := actionNames[k]; ok {
		return s
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// Action is one step of the exploratory path.
type Action struct {
	Step  int // 1-based position in the timeline
	Kind  ActionKind
	Label string // human-readable description
	// Query is the query state after this action.
	Query Query
	// RevisitOf is the 1-based step restored by an ActionRevisit, 0
	// otherwise.
	RevisitOf int
	// ChangesQuery reports whether this action produced a new query
	// (lookups do not).
	ChangesQuery bool
}

// Session accumulates the timeline. The zero value is not usable; call
// New.
type Session struct {
	actions []Action
	current Query
}

// New starts an empty session.
func New() *Session { return &Session{} }

// Current returns (a copy of) the live query.
func (s *Session) Current() Query { return s.current.Clone() }

// Timeline returns the recorded actions in order (shared slice; callers
// must not modify).
func (s *Session) Timeline() []Action { return s.actions }

// Len reports the number of recorded actions.
func (s *Session) Len() int { return len(s.actions) }

func (s *Session) record(kind ActionKind, label string, changes bool, revisitOf int) Action {
	a := Action{
		Step:         len(s.actions) + 1,
		Kind:         kind,
		Label:        label,
		Query:        s.current.Clone(),
		RevisitOf:    revisitOf,
		ChangesQuery: changes,
	}
	s.actions = append(s.actions, a)
	return a
}

// Mark is a restore point for Rewind: the timeline length and live
// query at the moment it was taken.
type Mark struct {
	n       int
	current Query
}

// Mark snapshots the session so a failed (or canceled) operation can be
// rolled back without copying the whole timeline.
func (s *Session) Mark() Mark {
	return Mark{n: len(s.actions), current: s.current.Clone()}
}

// Rewind truncates the timeline back to the mark and restores the live
// query — the engine's guarantee that an operation whose evaluation
// failed never corrupts session state.
func (s *Session) Rewind(m Mark) {
	if m.n <= len(s.actions) {
		s.actions = s.actions[:m.n]
	}
	s.current = m.current.Clone()
}

// Submit replaces the query with a fresh keyword query.
func (s *Session) Submit(keywords string) Action {
	s.current = Query{Keywords: keywords}
	return s.record(ActionSubmit, fmt.Sprintf("query %q", keywords), true, 0)
}

// AddSeed appends an example entity (no-op if already present).
func (s *Session) AddSeed(e rdf.TermID, name string) Action {
	for _, x := range s.current.Seeds {
		if x == e {
			return s.record(ActionAddSeed, fmt.Sprintf("+entity %s (already present)", name), false, 0)
		}
	}
	s.current.Seeds = append(s.current.Seeds, e)
	return s.record(ActionAddSeed, "+entity "+name, true, 0)
}

// RemoveSeed removes an example entity (no-op if absent).
func (s *Session) RemoveSeed(e rdf.TermID, name string) Action {
	for i, x := range s.current.Seeds {
		if x == e {
			s.current.Seeds = append(s.current.Seeds[:i:i], s.current.Seeds[i+1:]...)
			return s.record(ActionRemoveSeed, "-entity "+name, true, 0)
		}
	}
	return s.record(ActionRemoveSeed, fmt.Sprintf("-entity %s (absent)", name), false, 0)
}

// AddFeature appends a semantic-feature condition (no-op if present).
func (s *Session) AddFeature(f semfeat.Feature, label string) Action {
	for _, x := range s.current.Features {
		if x == f {
			return s.record(ActionAddFeature, fmt.Sprintf("+feature %s (already present)", label), false, 0)
		}
	}
	s.current.Features = append(s.current.Features, f)
	return s.record(ActionAddFeature, "+feature "+label, true, 0)
}

// RemoveFeature removes a semantic-feature condition (no-op if absent).
func (s *Session) RemoveFeature(f semfeat.Feature, label string) Action {
	for i, x := range s.current.Features {
		if x == f {
			s.current.Features = append(s.current.Features[:i:i], s.current.Features[i+1:]...)
			return s.record(ActionRemoveFeature, "-feature "+label, true, 0)
		}
	}
	return s.record(ActionRemoveFeature, fmt.Sprintf("-feature %s (absent)", label), false, 0)
}

// Lookup records a profile view; the query is unchanged.
func (s *Session) Lookup(e rdf.TermID, name string) Action {
	return s.record(ActionLookup, "lookup "+name, false, 0)
}

// Pivot switches the search domain: the query becomes the single pivot
// entity (the anchor of the clicked feature), which is how the paper's
// browse operation jumps from one domain (e.g. Film) to another (Actor).
func (s *Session) Pivot(anchor rdf.TermID, anchorName, domainName string) Action {
	s.current = Query{Seeds: []rdf.TermID{anchor}}
	return s.record(ActionPivot,
		fmt.Sprintf("pivot → %s (%s)", anchorName, domainName), true, 0)
}

// Revisit restores the query of a historical step (1-based). It fails if
// the step does not exist or did not change the query.
func (s *Session) Revisit(step int) (Action, error) {
	if step < 1 || step > len(s.actions) {
		return Action{}, fmt.Errorf("session: no step %d in a timeline of %d", step, len(s.actions))
	}
	target := s.actions[step-1]
	if !target.ChangesQuery {
		return Action{}, fmt.Errorf("session: step %d (%s) has no query to revisit", step, target.Kind)
	}
	s.current = target.Query.Clone()
	return s.record(ActionRevisit, fmt.Sprintf("revisit step %d", step), true, step), nil
}
