package session

import (
	"strings"
	"testing"

	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

func feat(anchor, pred rdf.TermID) semfeat.Feature {
	return semfeat.Feature{Anchor: anchor, Pred: pred, Dir: semfeat.Backward}
}

func TestSubmitResetsQuery(t *testing.T) {
	s := New()
	s.Submit("forrest gump")
	s.AddSeed(1, "Forrest Gump")
	s.Submit("apollo")
	q := s.Current()
	if q.Keywords != "apollo" || len(q.Seeds) != 0 {
		t.Fatalf("Submit did not reset: %+v", q)
	}
}

func TestAddRemoveSeed(t *testing.T) {
	s := New()
	s.Submit("x")
	s.AddSeed(1, "A")
	s.AddSeed(2, "B")
	if q := s.Current(); len(q.Seeds) != 2 {
		t.Fatalf("seeds = %v", q.Seeds)
	}
	// Duplicate add is a recorded no-op.
	a := s.AddSeed(1, "A")
	if a.ChangesQuery {
		t.Fatal("duplicate add marked as changing the query")
	}
	s.RemoveSeed(1, "A")
	if q := s.Current(); len(q.Seeds) != 1 || q.Seeds[0] != 2 {
		t.Fatalf("after remove: %v", q.Seeds)
	}
	// Absent remove is a recorded no-op.
	a = s.RemoveSeed(99, "Z")
	if a.ChangesQuery {
		t.Fatal("absent remove marked as changing the query")
	}
}

func TestAddRemoveFeature(t *testing.T) {
	s := New()
	s.Submit("x")
	f1 := feat(10, 20)
	s.AddFeature(f1, "Tom_Hanks:starring")
	if q := s.Current(); len(q.Features) != 1 {
		t.Fatalf("features = %v", q.Features)
	}
	if a := s.AddFeature(f1, "Tom_Hanks:starring"); a.ChangesQuery {
		t.Fatal("duplicate feature add changed query")
	}
	s.RemoveFeature(f1, "Tom_Hanks:starring")
	if q := s.Current(); len(q.Features) != 0 {
		t.Fatalf("features after remove = %v", q.Features)
	}
	if a := s.RemoveFeature(f1, "Tom_Hanks:starring"); a.ChangesQuery {
		t.Fatal("absent feature remove changed query")
	}
}

func TestLookupDoesNotChangeQuery(t *testing.T) {
	s := New()
	s.Submit("x")
	before := s.Current()
	a := s.Lookup(5, "Forrest Gump")
	if a.ChangesQuery {
		t.Fatal("lookup marked as changing query")
	}
	after := s.Current()
	if before.Keywords != after.Keywords || len(before.Seeds) != len(after.Seeds) {
		t.Fatal("lookup changed the query")
	}
}

func TestPivotReplacesQuery(t *testing.T) {
	s := New()
	s.Submit("forrest gump")
	s.AddSeed(1, "Forrest Gump")
	s.Pivot(7, "Tom Hanks", "Actor")
	q := s.Current()
	if q.Keywords != "" || len(q.Seeds) != 1 || q.Seeds[0] != 7 || len(q.Features) != 0 {
		t.Fatalf("pivot state = %+v", q)
	}
}

func TestRevisit(t *testing.T) {
	s := New()
	s.Submit("forrest gump")  // step 1
	s.AddSeed(1, "FG")        // step 2
	s.Pivot(7, "TH", "Actor") // step 3
	a, err := s.Revisit(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.RevisitOf != 2 {
		t.Fatalf("RevisitOf = %d", a.RevisitOf)
	}
	q := s.Current()
	if q.Keywords != "forrest gump" || len(q.Seeds) != 1 || q.Seeds[0] != 1 {
		t.Fatalf("revisited query = %+v", q)
	}
}

func TestRevisitErrors(t *testing.T) {
	s := New()
	s.Submit("x")
	s.Lookup(1, "A") // step 2, does not change query
	if _, err := s.Revisit(0); err == nil {
		t.Fatal("no error for step 0")
	}
	if _, err := s.Revisit(9); err == nil {
		t.Fatal("no error for out-of-range step")
	}
	if _, err := s.Revisit(2); err == nil {
		t.Fatal("no error for revisiting a lookup")
	}
}

func TestTimelineSnapshotsAreIsolated(t *testing.T) {
	s := New()
	s.Submit("x")
	s.AddSeed(1, "A")
	snap := s.Timeline()[1].Query
	s.AddSeed(2, "B")
	if len(snap.Seeds) != 1 {
		t.Fatalf("historical snapshot mutated: %v", snap.Seeds)
	}
}

func TestQueryCloneAndIsEmpty(t *testing.T) {
	q := Query{Keywords: "k", Seeds: []rdf.TermID{1}, Features: []semfeat.Feature{feat(1, 2)}}
	c := q.Clone()
	c.Seeds[0] = 9
	if q.Seeds[0] != 1 {
		t.Fatal("Clone aliases seeds")
	}
	if q.IsEmpty() {
		t.Fatal("non-empty query reported empty")
	}
	if !(Query{}).IsEmpty() {
		t.Fatal("empty query not reported empty")
	}
}

func TestActionKindString(t *testing.T) {
	if ActionSubmit.String() != "submit" || ActionPivot.String() != "pivot" {
		t.Fatal("ActionKind.String mismatch")
	}
	if ActionKind(99).String() != "ActionKind(99)" {
		t.Fatal("unknown kind string")
	}
}

func buildDemoSession() *Session {
	s := New()
	s.Submit("forrest gump")
	s.Lookup(1, "Forrest Gump")
	s.AddSeed(1, "Forrest Gump")
	s.Pivot(7, "Tom Hanks", "Actor")
	s.Revisit(1)
	return s
}

func TestPathASCII(t *testing.T) {
	s := buildDemoSession()
	out := s.PathASCII()
	for _, want := range []string{"[1]", "[5]", "pivot", "back to [1]", "exploratory path"} {
		if !strings.Contains(out, want) {
			t.Fatalf("PathASCII missing %q:\n%s", want, out)
		}
	}
}

func TestPathDOT(t *testing.T) {
	s := buildDemoSession()
	dot := s.PathDOT()
	for _, want := range []string{"digraph", "s1 -> s2", "s4 -> s5", "style=dashed", "revisit"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("PathDOT missing %q:\n%s", want, dot)
		}
	}
}

func TestPathSVG(t *testing.T) {
	s := buildDemoSession()
	svg := s.PathSVG()
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("not an SVG")
	}
	if got := strings.Count(svg, "<rect"); got != s.Len() {
		t.Fatalf("SVG has %d boxes, want %d", got, s.Len())
	}
}

func TestStepNumbersSequential(t *testing.T) {
	s := buildDemoSession()
	for i, a := range s.Timeline() {
		if a.Step != i+1 {
			t.Fatalf("step %d at index %d", a.Step, i)
		}
	}
}
