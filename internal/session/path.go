package session

import (
	"fmt"
	"strings"

	"pivote/internal/viz"
)

// PathASCII renders the exploratory path (Fig. 4) as an indented text
// tree: sequential steps flow downward, revisits point back to the step
// they restore.
func (s *Session) PathASCII() string {
	var b strings.Builder
	b.WriteString("exploratory path\n")
	for _, a := range s.actions {
		marker := "├─"
		if a.Step == len(s.actions) {
			marker = "└─"
		}
		fmt.Fprintf(&b, " %s[%d] %-15s %s", marker, a.Step, a.Kind, a.Label)
		if a.RevisitOf > 0 {
			fmt.Fprintf(&b, "  ⤴ back to [%d]", a.RevisitOf)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PathDOT renders the exploratory path as a Graphviz digraph: solid edges
// between consecutive steps, dashed edges from revisits to their targets.
func (s *Session) PathDOT() string {
	var b strings.Builder
	b.WriteString("digraph exploratory_path {\n  rankdir=TB;\n  node [shape=box, style=rounded, fontname=\"monospace\"];\n")
	for _, a := range s.actions {
		shape := ""
		switch a.Kind {
		case ActionSubmit:
			shape = ", fillcolor=gold, style=\"rounded,filled\""
		case ActionPivot:
			shape = ", fillcolor=lightblue, style=\"rounded,filled\""
		}
		fmt.Fprintf(&b, "  s%d [label=\"[%d] %s\"%s];\n", a.Step, a.Step, escapeDOT(a.Label), shape)
	}
	for i := 1; i < len(s.actions); i++ {
		fmt.Fprintf(&b, "  s%d -> s%d;\n", s.actions[i-1].Step, s.actions[i].Step)
	}
	for _, a := range s.actions {
		if a.RevisitOf > 0 {
			fmt.Fprintf(&b, "  s%d -> s%d [style=dashed, constraint=false, label=\"revisit\"];\n",
				a.Step, a.RevisitOf)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// PathSVG renders the exploratory path as a vertical flow chart.
func (s *Session) PathSVG() string {
	const (
		boxW  = 380.0
		boxH  = 30.0
		gap   = 16.0
		leftX = 60.0
		topY  = 20.0
	)
	h := int(topY + float64(len(s.actions))*(boxH+gap) + 20)
	svg := viz.NewSVG(int(leftX+boxW+120), h)
	y := topY
	for _, a := range s.actions {
		fill := "#f2f2f2"
		switch a.Kind {
		case ActionSubmit:
			fill = "#ffe9a8"
		case ActionPivot:
			fill = "#cfe8ff"
		case ActionRevisit:
			fill = "#e8d5ff"
		}
		svg.Rect(leftX, y, boxW, boxH, fill, "#666666")
		svg.Text(leftX+8, y+boxH*0.65, 11, "start",
			fmt.Sprintf("[%d] %s", a.Step, viz.Truncate(a.Label, 46)))
		if a.Step < len(s.actions) {
			svg.Line(leftX+boxW/2, y+boxH, leftX+boxW/2, y+boxH+gap, "#666666", 1.5)
		}
		if a.RevisitOf > 0 {
			// Back edge drawn on the right margin.
			fromY := y + boxH/2
			toY := topY + float64(a.RevisitOf-1)*(boxH+gap) + boxH/2
			svg.Line(leftX+boxW, fromY, leftX+boxW+40, fromY, "#9955cc", 1.0)
			svg.Line(leftX+boxW+40, fromY, leftX+boxW+40, toY, "#9955cc", 1.0)
			svg.Line(leftX+boxW+40, toY, leftX+boxW, toY, "#9955cc", 1.0)
		}
		y += boxH + gap
	}
	return svg.String()
}

func escapeDOT(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
