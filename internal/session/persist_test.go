package session

import (
	"fmt"
	"strings"
	"testing"

	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

// fakeResolver maps IDs to synthetic IRIs and features to labels without
// a real graph.
type fakeResolver struct {
	failEntity  bool
	failFeature bool
}

func (r fakeResolver) EntityIRI(e rdf.TermID) string { return fmt.Sprintf("iri:%d", e) }

func (r fakeResolver) ResolveEntity(iri string) (rdf.TermID, error) {
	if r.failEntity {
		return 0, fmt.Errorf("boom")
	}
	var id uint32
	if _, err := fmt.Sscanf(iri, "iri:%d", &id); err != nil {
		return 0, err
	}
	return rdf.TermID(id), nil
}

func (r fakeResolver) FeatureLabel(f semfeat.Feature) string {
	return fmt.Sprintf("f:%d:%d:%d", f.Anchor, f.Pred, f.Dir)
}

func (r fakeResolver) ResolveFeature(label string) (semfeat.Feature, error) {
	if r.failFeature {
		return semfeat.Feature{}, fmt.Errorf("boom")
	}
	var a, p uint32
	var d uint8
	if _, err := fmt.Sscanf(label, "f:%d:%d:%d", &a, &p, &d); err != nil {
		return semfeat.Feature{}, err
	}
	return semfeat.Feature{Anchor: rdf.TermID(a), Pred: rdf.TermID(p), Dir: semfeat.Dir(d)}, nil
}

func demoSessionForPersist() *Session {
	s := New()
	s.Submit("forrest gump")
	s.AddSeed(11, "Forrest Gump")
	s.AddFeature(semfeat.Feature{Anchor: 7, Pred: 3, Dir: semfeat.Backward}, "f:7:3:0")
	s.Pivot(7, "Tom Hanks", "Actor")
	s.Revisit(2)
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := demoSessionForPersist()
	raw, err := s.Save(fakeResolver{})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(raw, fakeResolver{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("timeline length %d, want %d", loaded.Len(), s.Len())
	}
	for i, a := range loaded.Timeline() {
		want := s.Timeline()[i]
		if a.Step != want.Step || a.Kind != want.Kind || a.Label != want.Label ||
			a.RevisitOf != want.RevisitOf || a.ChangesQuery != want.ChangesQuery {
			t.Fatalf("action %d differs: %+v vs %+v", i, a, want)
		}
		if a.Query.Keywords != want.Query.Keywords ||
			len(a.Query.Seeds) != len(want.Query.Seeds) ||
			len(a.Query.Features) != len(want.Query.Features) {
			t.Fatalf("query %d differs", i)
		}
	}
	// The live query is the last action's query.
	cur := loaded.Current()
	if len(cur.Seeds) != 1 || cur.Seeds[0] != 11 || cur.Keywords != "forrest gump" {
		t.Fatalf("live query = %+v", cur)
	}
	// The loaded session continues to work.
	loaded.AddSeed(99, "More")
	if loaded.Len() != s.Len()+1 {
		t.Fatal("loaded session cannot be extended")
	}
}

func TestLoadErrors(t *testing.T) {
	s := demoSessionForPersist()
	raw, err := s.Save(fakeResolver{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load([]byte("{not json"), fakeResolver{}); err == nil {
		t.Fatal("no error for bad JSON")
	}
	if _, err := Load([]byte(`{"version":9}`), fakeResolver{}); err == nil {
		t.Fatal("no error for bad version")
	}
	if _, err := Load(raw, fakeResolver{failEntity: true}); err == nil {
		t.Fatal("no error for unresolvable entity")
	}
	if _, err := Load(raw, fakeResolver{failFeature: true}); err == nil {
		t.Fatal("no error for unresolvable feature")
	}
	// Corrupt step numbering.
	broken := strings.Replace(string(raw), `"step": 1`, `"step": 5`, 1)
	if _, err := Load([]byte(broken), fakeResolver{}); err == nil {
		t.Fatal("no error for corrupt steps")
	}
	// Unknown action kind.
	broken = strings.Replace(string(raw), `"kind": "submit"`, `"kind": "teleport"`, 1)
	if _, err := Load([]byte(broken), fakeResolver{}); err == nil {
		t.Fatal("no error for unknown kind")
	}
}
