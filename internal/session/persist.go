package session

import (
	"encoding/json"
	"fmt"

	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

// Saved is the portable JSON form of a session. Entities are stored as
// IRIs and features as anchor:predicate labels, so a session survives
// process restarts and graph reloads (term IDs do not).
type Saved struct {
	Version int           `json:"version"`
	Actions []SavedAction `json:"actions"`
}

// SavedAction mirrors Action with symbolic references.
type SavedAction struct {
	Step         int        `json:"step"`
	Kind         string     `json:"kind"`
	Label        string     `json:"label"`
	RevisitOf    int        `json:"revisitOf,omitempty"`
	ChangesQuery bool       `json:"changesQuery"`
	Query        SavedQuery `json:"query"`
}

// SavedQuery mirrors Query with symbolic references.
type SavedQuery struct {
	Keywords string   `json:"keywords,omitempty"`
	Seeds    []string `json:"seeds,omitempty"`
	Features []string `json:"features,omitempty"`
}

// Resolver converts between IDs/features and their symbolic forms. The
// core engine provides one backed by the graph.
type Resolver interface {
	// EntityIRI returns the stable identifier of an entity.
	EntityIRI(e rdf.TermID) string
	// ResolveEntity inverts EntityIRI.
	ResolveEntity(iri string) (rdf.TermID, error)
	// FeatureLabel returns the anchor:predicate form of a feature.
	FeatureLabel(f semfeat.Feature) string
	// ResolveFeature inverts FeatureLabel.
	ResolveFeature(label string) (semfeat.Feature, error)
}

// Save serializes the session.
func (s *Session) Save(r Resolver) ([]byte, error) {
	out := Saved{Version: 1}
	for _, a := range s.actions {
		sq := SavedQuery{Keywords: a.Query.Keywords}
		for _, e := range a.Query.Seeds {
			sq.Seeds = append(sq.Seeds, r.EntityIRI(e))
		}
		for _, f := range a.Query.Features {
			sq.Features = append(sq.Features, r.FeatureLabel(f))
		}
		out.Actions = append(out.Actions, SavedAction{
			Step:         a.Step,
			Kind:         a.Kind.String(),
			Label:        a.Label,
			RevisitOf:    a.RevisitOf,
			ChangesQuery: a.ChangesQuery,
			Query:        sq,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// Load deserializes a session saved with Save against a (possibly
// freshly rebuilt) graph. The final action's query becomes the live
// query.
func Load(data []byte, r Resolver) (*Session, error) {
	var saved Saved
	if err := json.Unmarshal(data, &saved); err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	if saved.Version != 1 {
		return nil, fmt.Errorf("session: unsupported version %d", saved.Version)
	}
	kindByName := map[string]ActionKind{}
	for k, name := range actionNames {
		kindByName[name] = k
	}
	s := New()
	for i, sa := range saved.Actions {
		if sa.Step != i+1 {
			return nil, fmt.Errorf("session: action %d has step %d", i, sa.Step)
		}
		kind, ok := kindByName[sa.Kind]
		if !ok {
			return nil, fmt.Errorf("session: unknown action kind %q", sa.Kind)
		}
		q := Query{Keywords: sa.Query.Keywords}
		for _, iri := range sa.Query.Seeds {
			id, err := r.ResolveEntity(iri)
			if err != nil {
				return nil, fmt.Errorf("session: step %d: %w", sa.Step, err)
			}
			q.Seeds = append(q.Seeds, id)
		}
		for _, label := range sa.Query.Features {
			f, err := r.ResolveFeature(label)
			if err != nil {
				return nil, fmt.Errorf("session: step %d: %w", sa.Step, err)
			}
			q.Features = append(q.Features, f)
		}
		if sa.RevisitOf < 0 || sa.RevisitOf > len(saved.Actions) {
			return nil, fmt.Errorf("session: step %d revisits impossible step %d", sa.Step, sa.RevisitOf)
		}
		s.actions = append(s.actions, Action{
			Step:         sa.Step,
			Kind:         kind,
			Label:        sa.Label,
			Query:        q,
			RevisitOf:    sa.RevisitOf,
			ChangesQuery: sa.ChangesQuery,
		})
		s.current = q.Clone()
	}
	return s, nil
}
