package bgp

import (
	"fmt"
	"strings"

	"pivote/internal/kg"
	"pivote/internal/rdf"
)

// Parse reads a small SPARQL-like surface syntax:
//
//	SELECT ?film ?actor WHERE {
//	  ?film starring ?actor .
//	  ?film director Robert_Zemeckis
//	} LIMIT 10
//
// Node syntax: ?var, <full-iri>, "literal", or a bare name resolved
// against the graph (entity local names, predicate local names in the
// generator's ontology namespace, class and category names). SELECT and
// LIMIT are optional; SELECT * or omitting SELECT projects every
// variable.
func Parse(g *kg.Graph, query string) (Query, error) {
	toks, err := tokenize(query)
	if err != nil {
		return Query{}, err
	}
	q := Query{}
	i := 0
	if i < len(toks) && strings.EqualFold(toks[i], "SELECT") {
		i++
		if i < len(toks) && strings.EqualFold(toks[i], "DISTINCT") {
			q.Distinct = true
			i++
		}
		for i < len(toks) && !strings.EqualFold(toks[i], "WHERE") {
			t := toks[i]
			if t == "*" {
				i++
				continue
			}
			if !strings.HasPrefix(t, "?") {
				return Query{}, fmt.Errorf("bgp: SELECT expects variables, got %q", t)
			}
			q.Select = append(q.Select, t[1:])
			i++
		}
	}
	if i < len(toks) && strings.EqualFold(toks[i], "WHERE") {
		i++
	}
	if i >= len(toks) || toks[i] != "{" {
		return Query{}, fmt.Errorf("bgp: expected '{' to open the pattern block")
	}
	i++
	var current []Node
	flush := func() error {
		if len(current) == 0 {
			return nil
		}
		if len(current) != 3 {
			return fmt.Errorf("bgp: pattern has %d terms, want 3", len(current))
		}
		q.Where = append(q.Where, Pattern{S: current[0], P: current[1], O: current[2]})
		current = nil
		return nil
	}
	for i < len(toks) && toks[i] != "}" {
		t := toks[i]
		if t == "." {
			if err := flush(); err != nil {
				return Query{}, err
			}
			i++
			continue
		}
		n, err := parseNode(g, t)
		if err != nil {
			return Query{}, err
		}
		current = append(current, n)
		i++
	}
	if i >= len(toks) {
		return Query{}, fmt.Errorf("bgp: unterminated pattern block")
	}
	i++ // consume '}'
	if err := flush(); err != nil {
		return Query{}, err
	}
	if i < len(toks) && strings.EqualFold(toks[i], "LIMIT") {
		i++
		if i >= len(toks) {
			return Query{}, fmt.Errorf("bgp: LIMIT needs a number")
		}
		if _, err := fmt.Sscanf(toks[i], "%d", &q.Limit); err != nil {
			return Query{}, fmt.Errorf("bgp: bad LIMIT %q", toks[i])
		}
		i++
	}
	if i != len(toks) {
		return Query{}, fmt.Errorf("bgp: trailing tokens starting at %q", toks[i])
	}
	if len(q.Where) == 0 {
		return Query{}, fmt.Errorf("bgp: no patterns")
	}
	return q, nil
}

func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '{' || c == '}' || c == '*':
			toks = append(toks, string(c))
			i++
		case c == '.':
			toks = append(toks, ".")
			i++
		case c == '<':
			end := strings.IndexByte(s[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("bgp: unterminated IRI")
			}
			toks = append(toks, s[i:i+end+1])
			i += end + 1
		case c == '"':
			end := strings.IndexByte(s[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("bgp: unterminated literal")
			}
			toks = append(toks, s[i:i+end+2])
			i += end + 2
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n\r{}.", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks, nil
}

// namespaces tried, in order, when resolving bare names.
var bareNamespaces = []string{
	"http://pivote.dev/ontology/",
	"http://pivote.dev/resource/",
	"http://pivote.dev/ontology/class/",
	"http://pivote.dev/category/",
}

func parseNode(g *kg.Graph, tok string) (Node, error) {
	switch {
	case strings.HasPrefix(tok, "?"):
		if len(tok) == 1 {
			return Node{}, fmt.Errorf("bgp: empty variable name")
		}
		return Variable(tok[1:]), nil
	case strings.HasPrefix(tok, "<") && strings.HasSuffix(tok, ">"):
		iri := tok[1 : len(tok)-1]
		if id := g.Dict().LookupIRI(iri); id != rdf.NoTerm {
			return Bound(id), nil
		}
		return Node{}, fmt.Errorf("bgp: IRI %q not in the graph", iri)
	case strings.HasPrefix(tok, `"`) && strings.HasSuffix(tok, `"`) && len(tok) >= 2:
		lit := g.Dict().Lookup(rdf.NewLiteral(tok[1 : len(tok)-1]))
		if lit == rdf.NoTerm {
			return Node{}, fmt.Errorf("bgp: literal %s not in the graph", tok)
		}
		return Bound(lit), nil
	default:
		if tok == "a" { // SPARQL shorthand for rdf:type
			return Bound(g.Dict().LookupIRI(kg.IRIType)), nil
		}
		for _, ns := range bareNamespaces {
			if id := g.Dict().LookupIRI(ns + tok); id != rdf.NoTerm {
				return Bound(id), nil
			}
		}
		if id := g.Dict().LookupIRI(tok); id != rdf.NoTerm {
			return Bound(id), nil
		}
		return Node{}, fmt.Errorf("bgp: cannot resolve name %q", tok)
	}
}
