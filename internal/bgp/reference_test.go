package bgp

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pivote/internal/rdf"
)

// naiveExecute evaluates a BGP by brute force: enumerate every
// combination of triples (one per pattern) and keep consistent variable
// assignments. Exponential, but exact — the oracle for the optimized
// engine.
func naiveExecute(st *rdf.Store, q Query) []Binding {
	var triples []rdf.Triple
	st.ForEachTriple(func(t rdf.Triple) { triples = append(triples, t) })

	var results []Binding
	assignment := Binding{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Where) {
			row := project(assignment, q.Select)
			results = append(results, row)
			return
		}
		p := q.Where[i]
		for _, t := range triples {
			bound := map[string]rdf.TermID{}
			ok := true
			try := func(n Node, id rdf.TermID) {
				if !ok {
					return
				}
				if !n.IsVar() {
					if n.ID != id {
						ok = false
					}
					return
				}
				if v, exists := assignment[n.Var]; exists {
					if v != id {
						ok = false
					}
					return
				}
				if v, exists := bound[n.Var]; exists {
					if v != id {
						ok = false
					}
					return
				}
				bound[n.Var] = id
			}
			try(p.S, t.S)
			try(p.P, t.P)
			try(p.O, t.O)
			if !ok {
				continue
			}
			for k, v := range bound {
				assignment[k] = v
			}
			rec(i + 1)
			for k := range bound {
				delete(assignment, k)
			}
		}
	}
	rec(0)
	// Deduplicate identical projected rows? The optimized engine also
	// emits one row per match, so keep duplicates; both sides sort.
	return results
}

func canonical(bs []Binding) []string {
	out := make([]string, 0, len(bs))
	for _, b := range bs {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		row := ""
		for _, k := range keys {
			row += fmt.Sprintf("%s=%d;", k, b[k])
		}
		out = append(out, row)
	}
	sort.Strings(out)
	return out
}

// TestExecuteMatchesNaiveReference cross-checks the optimized engine
// against brute force on random small graphs and random queries.
func TestExecuteMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		st := rdf.NewStore(nil)
		d := st.Dict()
		nNodes := 4 + rng.Intn(5)
		nPreds := 1 + rng.Intn(3)
		nodes := make([]rdf.TermID, nNodes)
		for i := range nodes {
			nodes[i] = d.Intern(rdf.NewIRI(fmt.Sprintf("n%d", i)))
		}
		preds := make([]rdf.TermID, nPreds)
		for i := range preds {
			preds[i] = d.Intern(rdf.NewIRI(fmt.Sprintf("p%d", i)))
		}
		nTriples := 3 + rng.Intn(12)
		for i := 0; i < nTriples; i++ {
			st.Add(nodes[rng.Intn(nNodes)], preds[rng.Intn(nPreds)], nodes[rng.Intn(nNodes)])
		}
		st.Freeze()

		// Random query: 1-3 patterns over variables x,y,z and random
		// constants.
		varNames := []string{"x", "y", "z"}
		mkNode := func(varProb float64) Node {
			if rng.Float64() < varProb {
				return Variable(varNames[rng.Intn(len(varNames))])
			}
			return Bound(nodes[rng.Intn(nNodes)])
		}
		mkPred := func() Node {
			if rng.Float64() < 0.3 {
				return Variable(varNames[rng.Intn(len(varNames))])
			}
			return Bound(preds[rng.Intn(nPreds)])
		}
		q := Query{}
		nPatterns := 1 + rng.Intn(3)
		for i := 0; i < nPatterns; i++ {
			q.Where = append(q.Where, Pattern{S: mkNode(0.7), P: mkPred(), O: mkNode(0.7)})
		}

		got, err := Execute(st, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := naiveExecute(st, q)
		if !reflect.DeepEqual(canonical(got), canonical(want)) {
			t.Fatalf("trial %d: engine and reference disagree\nquery: %+v\ngot  %d rows: %v\nwant %d rows: %v",
				trial, q, len(got), canonical(got), len(want), canonical(want))
		}
	}
}
