// Package bgp implements a SPARQL-style basic-graph-pattern matcher over
// the RDF store. The paper positions PivotE against "effective accesses
// of the KGs in a structured manner like SPARQL"; this package is that
// baseline access path, used by the examples to contrast structured
// querying (you must already know the schema) with PivotE's exploration
// (the schema reveals itself as you click).
//
// Supported: conjunctive triple patterns with shared variables,
// selectivity-ordered left-deep evaluation, SELECT projection, LIMIT.
package bgp

import (
	"fmt"
	"sort"

	"pivote/internal/rdf"
)

// Node is one position of a triple pattern: either a variable or a
// concrete term.
type Node struct {
	// Var is the variable name (without '?'); empty for concrete nodes.
	Var string
	// ID is the concrete term; NoTerm for variables.
	ID rdf.TermID
}

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Var != "" }

// Variable returns a variable node.
func Variable(name string) Node { return Node{Var: name} }

// Bound returns a concrete node.
func Bound(id rdf.TermID) Node { return Node{ID: id} }

// Pattern is one triple pattern.
type Pattern struct {
	S, P, O Node
}

// Query is a basic graph pattern with projection.
type Query struct {
	// Select lists the projected variables; empty selects all.
	Select []string
	// Distinct deduplicates projected rows (SELECT DISTINCT).
	Distinct bool
	// Where is the conjunctive pattern set.
	Where []Pattern
	// Limit bounds the result count; 0 is unlimited. With Distinct it
	// bounds distinct rows.
	Limit int
}

// Binding maps variable names to terms.
type Binding map[string]rdf.TermID

// Execute evaluates the query and returns all bindings of the projected
// variables, deterministically ordered. Unbound projected variables are
// an error.
func Execute(st *rdf.Store, q Query) ([]Binding, error) {
	vars := map[string]bool{}
	for _, p := range q.Where {
		for _, n := range []Node{p.S, p.P, p.O} {
			if n.IsVar() {
				vars[n.Var] = true
			}
		}
	}
	for _, v := range q.Select {
		if !vars[v] {
			return nil, fmt.Errorf("bgp: projected variable ?%s not used in any pattern", v)
		}
	}
	if len(q.Where) == 0 {
		return nil, fmt.Errorf("bgp: empty pattern")
	}

	var results []Binding
	var seen map[string]bool
	if q.Distinct {
		seen = map[string]bool{}
	}
	binding := Binding{}
	remaining := append([]Pattern(nil), q.Where...)
	var walk func() bool // returns true to stop (limit reached)
	walk = func() bool {
		if len(remaining) == 0 {
			row := project(binding, q.Select)
			if q.Distinct {
				k := rowKey(row, q.Select, vars)
				if seen[k] {
					return false
				}
				seen[k] = true
			}
			results = append(results, row)
			return q.Limit > 0 && len(results) >= q.Limit
		}
		// Pick the most selective remaining pattern under the current
		// binding (fewest estimated matches).
		best := 0
		bestCost := int(^uint(0) >> 1)
		for i, p := range remaining {
			c := estimate(st, p, binding)
			if c < bestCost {
				best, bestCost = i, c
			}
		}
		p := remaining[best]
		remaining = append(remaining[:best:best], remaining[best+1:]...)
		stop := false
		enumerate(st, p, binding, func(newVars []string) bool {
			stop = walk()
			for _, v := range newVars {
				delete(binding, v)
			}
			return stop
		})
		remaining = append(remaining, Pattern{})
		copy(remaining[best+1:], remaining[best:])
		remaining[best] = p
		return stop
	}
	walk()
	sortBindings(results, q.Select, vars)
	return results, nil
}

func project(b Binding, sel []string) Binding {
	out := Binding{}
	if len(sel) == 0 {
		for k, v := range b {
			out[k] = v
		}
		return out
	}
	for _, v := range sel {
		out[v] = b[v]
	}
	return out
}

// rowKey serializes a projected row for DISTINCT comparison.
func rowKey(row Binding, sel []string, vars map[string]bool) string {
	keys := sel
	if len(keys) == 0 {
		keys = make([]string, 0, len(vars))
		for v := range vars {
			keys = append(keys, v)
		}
		sort.Strings(keys)
	}
	out := make([]byte, 0, len(keys)*5)
	for _, k := range keys {
		v := row[k]
		out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), '|')
	}
	return string(out)
}

func sortBindings(bs []Binding, sel []string, vars map[string]bool) {
	keys := sel
	if len(keys) == 0 {
		keys = make([]string, 0, len(vars))
		for v := range vars {
			keys = append(keys, v)
		}
		sort.Strings(keys)
	}
	sort.Slice(bs, func(i, j int) bool {
		for _, k := range keys {
			if bs[i][k] != bs[j][k] {
				return bs[i][k] < bs[j][k]
			}
		}
		return false
	})
}

// resolve substitutes the current binding into a node.
func resolve(n Node, b Binding) Node {
	if n.IsVar() {
		if id, ok := b[n.Var]; ok {
			return Bound(id)
		}
	}
	return n
}

// estimate approximates the number of matches of p under b; lower is more
// selective. Exact counts are used where an index run answers directly.
func estimate(st *rdf.Store, p Pattern, b Binding) int {
	s, pr, o := resolve(p.S, b), resolve(p.P, b), resolve(p.O, b)
	switch {
	case !s.IsVar() && !pr.IsVar() && !o.IsVar():
		return 1
	case !s.IsVar() && !pr.IsVar():
		return st.CountObjects(s.ID, pr.ID)
	case !pr.IsVar() && !o.IsVar():
		return st.CountSubjects(pr.ID, o.ID)
	case !s.IsVar():
		return st.OutDegree(s.ID)
	case !o.IsVar():
		return st.InDegree(o.ID)
	default:
		return st.Len() // full scan
	}
}

// enumerate yields every extension of b matching p. yield's argument
// lists the variables newly bound for that match (to be unbound by the
// caller after recursion); returning true stops enumeration.
func enumerate(st *rdf.Store, p Pattern, b Binding, yield func(newVars []string) bool) {
	s, pr, o := resolve(p.S, b), resolve(p.P, b), resolve(p.O, b)

	bind := func(pairs ...interface{}) []string {
		var names []string
		for i := 0; i < len(pairs); i += 2 {
			name := pairs[i].(string)
			b[name] = pairs[i+1].(rdf.TermID)
			names = append(names, name)
		}
		return names
	}

	switch {
	case !s.IsVar() && !pr.IsVar() && !o.IsVar():
		if st.Has(s.ID, pr.ID, o.ID) {
			yield(nil)
		}
	case !s.IsVar() && !pr.IsVar(): // objects of (s, p)
		for _, obj := range st.Objects(s.ID, pr.ID) {
			if stop := yield(bind(o.Var, obj)); stop {
				return
			}
		}
	case !pr.IsVar() && !o.IsVar(): // subjects of (p, o)
		for _, sub := range st.Subjects(pr.ID, o.ID) {
			if stop := yield(bind(s.Var, sub)); stop {
				return
			}
		}
	case !s.IsVar(): // out edges of s
		for _, e := range st.Out(s.ID) {
			if !o.IsVar() && e.Node != o.ID {
				continue
			}
			var args []interface{}
			if pr.IsVar() {
				args = append(args, pr.Var, e.P)
			}
			if o.IsVar() {
				args = append(args, o.Var, e.Node)
			}
			if pr.IsVar() && o.IsVar() && pr.Var == o.Var && e.P != e.Node {
				continue
			}
			if stop := yield(bind(args...)); stop {
				return
			}
		}
	case !o.IsVar(): // in edges of o
		for _, e := range st.In(o.ID) {
			var args []interface{}
			if s.IsVar() {
				args = append(args, s.Var, e.Node)
			}
			if pr.IsVar() {
				args = append(args, pr.Var, e.P)
			}
			if s.IsVar() && pr.IsVar() && s.Var == pr.Var && e.Node != e.P {
				continue
			}
			if stop := yield(bind(args...)); stop {
				return
			}
		}
	default: // full scan
		stop := false
		st.ForEachTriple(func(t rdf.Triple) {
			if stop {
				return
			}
			// Consistency for repeated variables within the pattern.
			trial := map[string]rdf.TermID{}
			ok := true
			tryBind := func(n Node, id rdf.TermID) {
				if !ok || !n.IsVar() {
					if !n.IsVar() && n.ID != id {
						ok = false
					}
					return
				}
				if prev, seen := trial[n.Var]; seen && prev != id {
					ok = false
					return
				}
				trial[n.Var] = id
			}
			tryBind(s, t.S)
			tryBind(pr, t.P)
			tryBind(o, t.O)
			if !ok {
				return
			}
			var args []interface{}
			var names []string
			for name, id := range trial {
				args = append(args, name, id)
				names = append(names, name)
			}
			sort.Strings(names)
			sortedArgs := make([]interface{}, 0, len(args))
			for _, n := range names {
				sortedArgs = append(sortedArgs, n, trial[n])
			}
			stop = yield(bind(sortedArgs...))
		})
	}
}
