package bgp

import (
	"testing"

	"pivote/internal/kgtest"
	"pivote/internal/rdf"
)

func mustParse(t *testing.T, f *kgtest.Fixture, q string) Query {
	t.Helper()
	query, err := Parse(f.Graph, q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return query
}

func mustExec(t *testing.T, f *kgtest.Fixture, q string) []Binding {
	t.Helper()
	query := mustParse(t, f, q)
	out, err := Execute(f.Store, query)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return out
}

func TestSinglePattern(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `SELECT ?film WHERE { ?film starring Tom_Hanks }`)
	if len(out) != 6 {
		t.Fatalf("films starring Tom Hanks = %d, want 6", len(out))
	}
	for _, b := range out {
		if !f.Store.Has(b["film"], f.E("p:starring"), f.E("Tom_Hanks")) {
			t.Fatalf("binding %v does not satisfy the pattern", b)
		}
	}
}

func TestConjunctiveJoin(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `
		SELECT ?film WHERE {
			?film starring Tom_Hanks .
			?film director Robert_Zemeckis
		}`)
	// Forrest Gump and Cast Away.
	if len(out) != 2 {
		t.Fatalf("join = %d results, want 2", len(out))
	}
	names := map[rdf.TermID]bool{f.E("Forrest_Gump"): true, f.E("Cast_Away"): true}
	for _, b := range out {
		if !names[b["film"]] {
			t.Fatalf("unexpected film %s", f.Graph.Name(b["film"]))
		}
	}
}

func TestJoinAcrossEntities(t *testing.T) {
	// Co-stars of Tom Hanks: actors appearing in a film with him.
	f := kgtest.Build()
	out := mustExec(t, f, `
		SELECT ?costar WHERE {
			?film starring Tom_Hanks .
			?film starring ?costar
		}`)
	seen := map[string]bool{}
	for _, b := range out {
		seen[f.Graph.Name(b["costar"])] = true
	}
	// Includes Hanks himself plus every fixture co-star.
	for _, want := range []string{"Tom Hanks", "Gary Sinise", "Robin Wright", "Kevin Bacon", "Matt Damon", "Michael Clarke Duncan"} {
		if !seen[want] {
			t.Fatalf("co-stars missing %s: %v", want, seen)
		}
	}
	if seen["Leonardo DiCaprio"] {
		t.Fatal("DiCaprio is not a Hanks co-star")
	}
}

func TestTypePatternWithA(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `SELECT ?x WHERE { ?x a Director }`)
	// Zemeckis, Howard, Darabont, Demme, Spielberg, Nolan, Cameron.
	if len(out) != 7 {
		t.Fatalf("directors = %d, want 7", len(out))
	}
}

func TestVariablePredicate(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `SELECT ?p WHERE { Forrest_Gump ?p Tom_Hanks }`)
	if len(out) != 1 || out[0]["p"] != f.E("p:starring") {
		t.Fatalf("predicates between FG and TH = %v", out)
	}
}

func TestLiteralObject(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `SELECT ?film WHERE { ?film runtime "142 minutes" }`)
	if len(out) != 1 || out[0]["film"] != f.E("Forrest_Gump") {
		t.Fatalf("runtime query = %v", out)
	}
}

func TestLimit(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `SELECT ?film WHERE { ?film starring Tom_Hanks } LIMIT 3`)
	if len(out) != 3 {
		t.Fatalf("LIMIT 3 returned %d", len(out))
	}
}

func TestProjectionAndOrdering(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `SELECT ?film ?actor WHERE { ?film starring ?actor }`)
	if len(out) != 14 { // 3+3+1+2+1+2+1+1 (film, actor) pairs
		t.Fatalf("pairs = %d, want 14", len(out))
	}
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a["film"] > b["film"] || (a["film"] == b["film"] && a["actor"] > b["actor"]) {
			t.Fatal("results not deterministically ordered")
		}
	}
	// Projection drops unselected vars.
	if _, ok := out[0]["nope"]; ok {
		t.Fatal("unexpected variable in projection")
	}
}

func TestSelectOmittedProjectsAll(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `{ ?film director ?d }`)
	if len(out) == 0 {
		t.Fatal("no results")
	}
	if _, ok := out[0]["film"]; !ok {
		t.Fatal("film variable missing")
	}
	if _, ok := out[0]["d"]; !ok {
		t.Fatal("d variable missing")
	}
}

func TestFullIRINode(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `SELECT ?x WHERE { ?x <http://pivote.dev/ontology/director> <http://pivote.dev/resource/Ron_Howard> }`)
	if len(out) != 1 || out[0]["x"] != f.E("Apollo_13") {
		t.Fatalf("IRI query = %v", out)
	}
}

func TestFullScanPattern(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5`)
	if len(out) != 5 {
		t.Fatalf("full scan LIMIT 5 = %d", len(out))
	}
	for _, b := range out {
		if !f.Store.Has(b["s"], b["p"], b["o"]) {
			t.Fatalf("scan produced non-triple %v", b)
		}
	}
}

func TestRepeatedVariableInPattern(t *testing.T) {
	// ?x starring ?x can never hold in the fixture.
	f := kgtest.Build()
	out := mustExec(t, f, `SELECT ?x WHERE { ?x starring ?x }`)
	if len(out) != 0 {
		t.Fatalf("self-starring = %v", out)
	}
}

func TestDistinct(t *testing.T) {
	f := kgtest.Build()
	// Without DISTINCT: one row per (film, costar) match, projected to
	// costar — duplicates for actors in several Hanks films.
	plain := mustExec(t, f, `SELECT ?costar WHERE { ?film starring Tom_Hanks . ?film starring ?costar }`)
	distinct := mustExec(t, f, `SELECT DISTINCT ?costar WHERE { ?film starring Tom_Hanks . ?film starring ?costar }`)
	if len(distinct) >= len(plain) {
		t.Fatalf("DISTINCT (%d) not smaller than plain (%d)", len(distinct), len(plain))
	}
	seen := map[rdf.TermID]bool{}
	for _, b := range distinct {
		if seen[b["costar"]] {
			t.Fatalf("duplicate %s under DISTINCT", f.Graph.Name(b["costar"]))
		}
		seen[b["costar"]] = true
	}
	// 6 distinct co-stars (Hanks + 5 others).
	if len(distinct) != 6 {
		t.Fatalf("distinct co-stars = %d, want 6", len(distinct))
	}
}

func TestDistinctWithLimit(t *testing.T) {
	f := kgtest.Build()
	out := mustExec(t, f, `SELECT DISTINCT ?costar WHERE { ?film starring Tom_Hanks . ?film starring ?costar } LIMIT 3`)
	if len(out) != 3 {
		t.Fatalf("DISTINCT LIMIT 3 = %d rows", len(out))
	}
	seen := map[rdf.TermID]bool{}
	for _, b := range out {
		if seen[b["costar"]] {
			t.Fatal("duplicate under DISTINCT LIMIT")
		}
		seen[b["costar"]] = true
	}
}

func TestParseErrors(t *testing.T) {
	f := kgtest.Build()
	cases := []string{
		``,
		`SELECT ?x WHERE { }`,
		`SELECT ?x WHERE { ?x starring`,
		`SELECT x WHERE { ?x starring Tom_Hanks }`,
		`SELECT ?x WHERE { ?x starring Tom_Hanks } LIMIT abc`,
		`SELECT ?x WHERE { ?x starring Tom_Hanks } garbage`,
		`{ ?x unknownpred ?y }`,
		`{ ?x starring Unknown_Entity_Zzz }`,
		`{ ?x starring "no such literal" }`,
		`{ ?x starring <http://nope/iri> }`,
		`{ ?x starring }`,
		`{ ?x ?y ?z ?w }`,
		`{ ?x starring ? }`,
	}
	for _, q := range cases {
		if _, err := Parse(f.Graph, q); err == nil {
			t.Fatalf("no error for %q", q)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	f := kgtest.Build()
	// Projected variable not bound anywhere.
	q := Query{
		Select: []string{"ghost"},
		Where:  []Pattern{{S: Variable("x"), P: Bound(f.E("p:starring")), O: Bound(f.E("Tom_Hanks"))}},
	}
	if _, err := Execute(f.Store, q); err == nil {
		t.Fatal("no error for unbound projection")
	}
	if _, err := Execute(f.Store, Query{}); err == nil {
		t.Fatal("no error for empty query")
	}
}

func TestSelectivityOrderingBeatsNaive(t *testing.T) {
	// A query written in worst order (full scan first) must still
	// evaluate correctly and fast because patterns are reordered.
	f := kgtest.Build()
	out := mustExec(t, f, `
		SELECT ?film WHERE {
			?film ?p ?o .
			?film director Robert_Zemeckis .
			?film starring Gary_Sinise
		}`)
	// Forrest Gump is the only Zemeckis film with Sinise; it has many
	// (p, o) pairs, each producing one binding of the first pattern —
	// project+dedup is the caller's job, bindings are per-match.
	if len(out) == 0 {
		t.Fatal("no results")
	}
	for _, b := range out {
		if b["film"] != f.E("Forrest_Gump") {
			t.Fatalf("wrong film %s", f.Graph.Name(b["film"]))
		}
	}
}

func BenchmarkJoinQuery(b *testing.B) {
	f := kgtest.Build()
	q, err := Parse(f.Graph, `SELECT ?film WHERE { ?film starring Tom_Hanks . ?film director Robert_Zemeckis }`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Execute(f.Store, q)
		if err != nil || len(out) != 2 {
			b.Fatalf("bad result: %v %v", out, err)
		}
	}
}
