// Package wire is the compact binary codec for the payloads that cross
// the router↔shard hop: state pages, op-batch requests/responses and
// session files. It exists because the intra-cluster hop was paying the
// public API's JSON tax on every scatter — reflection-driven encoding,
// float formatting, token scanning — twice per hop, per shard, per
// request. The codec is hand-rolled over dense arrays (no reflection on
// either path), length-prefixed and versioned, and negotiated per hop
// via Accept/Content-Type with JSON remaining both the public client
// contract and the automatic fallback, so mixed-version clusters keep
// working and public responses stay byte-identical.
//
// # Format
//
// Every message starts with a five-byte header: the magic "PVW", a
// format version byte, and a message-kind byte. The body is a sequence
// of length-prefixed sections (one byte section id + uvarint payload
// length); decoders skip sections they do not know, which is the
// forward-compatibility story — a newer node may add sections, an older
// reader still decodes the ones it understands. Within sections,
// repeated records are stored as dense columns (all ids, then all
// scores, then all names) so fixed-width columns are straight memory
// copies; counts and ids are uvarints, scores and probabilities are raw
// IEEE-754 bits (bit-exact round-trips, unlike any decimal detour), and
// strings are uvarint-length-prefixed UTF-8.
//
// Nil-ness is significant for byte-identical JSON re-encoding (a nil
// slice vanishes under omitempty and renders as null inside the heat
// map, an empty one renders as []), so slice fields inside the heat map
// carry a tag: 0 encodes nil, n+1 encodes length n. Top-level state
// areas use section presence instead, mirroring their omitempty tags.
//
// Every decode failure is a typed *DecodeError carrying the byte
// offset; decoders validate counts against the remaining input before
// allocating, so corrupt or truncated bytes can neither panic nor bait
// attacker-sized allocations (fuzzed by FuzzDecodeWire).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"pivote/internal/apidto"
	"pivote/internal/core"
	"pivote/internal/heatmap"
	"pivote/internal/rdf"
)

// ContentType is the negotiated media type of this codec. The router
// offers it with an Accept header; a shard that speaks it answers with
// this Content-Type (and advertises support on every negotiated route),
// and request bodies carry it once the router has seen the
// advertisement. Anything else on the hop is JSON.
const ContentType = "application/x-pivote-wire"

// Version is the format version stamped into every message header.
// Decoders reject other versions with a typed error, which surfaces as
// a JSON fallback at the negotiation layer — a mixed cluster degrades
// to the common denominator instead of corrupting responses.
const Version = 1

// Message kinds.
const (
	kindState       = 1 // a StateV1DTO
	kindOpsResponse = 2 // applied count + StateV1DTO
	kindOpsRequest  = 3 // op DTO batch + include selection
	kindSessionFile = 4 // versioned replayable op log
)

// State section ids.
const (
	secDescription = 1
	secEntities    = 2
	secFeatures    = 3
	secHeat        = 4
	secTimeline    = 5
	secFallback    = 6
)

// DecodeError is the typed failure of every decoder in this package:
// what went wrong and at which byte offset.
type DecodeError struct {
	Off int
	Msg string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: %s (offset %d)", e.Msg, e.Off)
}

// ---------------------------------------------------------------------
// Encoding primitives (append-style: zero allocations beyond dst growth)

func appendHeader(dst []byte, kind byte) []byte {
	return append(dst, 'P', 'V', 'W', Version, kind)
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendInt zigzag-encodes a signed int so small negatives stay small.
func appendInt(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendSection frames body() under the given id: reserve, write, then
// back-patch the uvarint length. Lengths are written in full 10-byte
// form would waste space, so the body is built on a scratch tail and
// the prefix inserted — sections are small enough that the copy is
// cheaper than a second pass.
func appendSection(dst []byte, id byte, body func([]byte) []byte) []byte {
	dst = append(dst, id)
	start := len(dst)
	dst = body(dst)
	payload := len(dst) - start
	var pfx [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], uint64(payload))
	dst = append(dst, pfx[:n]...)          // grow by the prefix size
	copy(dst[start+n:], dst[start:start+payload]) // shift payload right
	copy(dst[start:], pfx[:n])             // drop the prefix in front
	return dst
}

// ---------------------------------------------------------------------
// Decoding primitives

type reader struct {
	b   []byte
	off int
}

func (r *reader) fail(msg string) *DecodeError { return &DecodeError{Off: r.off, Msg: msg} }

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, r.fail("truncated: want 1 byte")
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail("bad uvarint")
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail("bad varint")
	}
	r.off += n
	return v, nil
}

// count reads an element count and rejects anything the remaining bytes
// cannot possibly hold (each element costs at least perElem bytes) — the
// guard that keeps corrupt counts from baiting huge allocations.
func (r *reader) count(perElem int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if perElem < 1 {
		perElem = 1
	}
	if v > uint64(r.remaining()/perElem) {
		return 0, r.fail(fmt.Sprintf("count %d exceeds remaining input", v))
	}
	return int(v), nil
}

func (r *reader) str() (string, error) {
	n, err := r.count(1)
	if err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

// strInto decodes a string but returns old — allocation-free — when the
// bytes match it. Reused decode targets (the router's per-fan scratch)
// re-read the same names and labels far more often than not, and the
// equality check is cheaper than the copy it avoids. (string(b) == old
// compiles to a comparison, not a conversion.)
func (r *reader) strInto(old string) (string, error) {
	n, err := r.count(1)
	if err != nil {
		return "", err
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	if string(b) == old {
		return old, nil
	}
	return string(b), nil
}

func (r *reader) f64() (float64, error) {
	if r.remaining() < 8 {
		return 0, r.fail("truncated float64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (r *reader) bool() (bool, error) {
	b, err := r.byte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, r.fail(fmt.Sprintf("bad bool byte %d", b))
	}
}

func (r *reader) header(wantKind byte) error {
	if r.remaining() < 5 {
		return r.fail("truncated header")
	}
	if r.b[r.off] != 'P' || r.b[r.off+1] != 'V' || r.b[r.off+2] != 'W' {
		return r.fail("bad magic")
	}
	if v := r.b[r.off+3]; v != Version {
		return &DecodeError{Off: r.off + 3, Msg: fmt.Sprintf("unsupported format version %d", v)}
	}
	if k := r.b[r.off+4]; k != wantKind {
		return &DecodeError{Off: r.off + 4, Msg: fmt.Sprintf("message kind %d, want %d", k, wantKind)}
	}
	r.off += 5
	return nil
}

// ---------------------------------------------------------------------
// State

// AppendState encodes st after dst and returns the extended slice.
func AppendState(dst []byte, st *apidto.StateV1DTO) []byte {
	dst = appendHeader(dst, kindState)
	return appendStateBody(dst, st)
}

func appendStateBody(dst []byte, st *apidto.StateV1DTO) []byte {
	dst = appendSection(dst, secDescription, func(d []byte) []byte {
		return append(d, st.Description...)
	})
	if len(st.Entities) > 0 {
		dst = appendSection(dst, secEntities, func(d []byte) []byte {
			return appendEntities(d, st.Entities)
		})
	}
	if len(st.Features) > 0 {
		dst = appendSection(dst, secFeatures, func(d []byte) []byte {
			d = appendUvarint(d, uint64(len(st.Features)))
			for _, f := range st.Features {
				d = appendUvarint(d, uint64(f.AnchorID))
			}
			for _, f := range st.Features {
				d = appendF64(d, f.R)
			}
			for _, f := range st.Features {
				d = appendInt(d, f.ExtentSize)
			}
			for _, f := range st.Features {
				d = appendString(d, f.Label)
			}
			return d
		})
	}
	if st.Heat != nil {
		dst = appendSection(dst, secHeat, func(d []byte) []byte {
			return appendHeat(d, st.Heat)
		})
	}
	if len(st.Timeline) > 0 {
		dst = appendSection(dst, secTimeline, func(d []byte) []byte {
			d = appendUvarint(d, uint64(len(st.Timeline)))
			for _, t := range st.Timeline {
				d = appendInt(d, t.Step)
				d = appendString(d, t.Kind)
				d = appendString(d, t.Label)
				d = appendInt(d, t.RevisitOf)
				d = appendBool(d, t.ChangesQuery)
			}
			return d
		})
	}
	if st.Fallback {
		dst = appendSection(dst, secFallback, func(d []byte) []byte {
			return appendBool(d, true)
		})
	}
	return dst
}

func appendEntities(d []byte, ents []apidto.EntityDTO) []byte {
	d = appendUvarint(d, uint64(len(ents)))
	for _, e := range ents {
		d = appendUvarint(d, uint64(e.ID))
	}
	for _, e := range ents {
		d = appendF64(d, e.Score)
	}
	for _, e := range ents {
		d = appendString(d, e.Name)
	}
	for _, e := range ents {
		d = appendString(d, e.Type)
	}
	return d
}

// appendTagged writes the nil-aware length tag: 0 for nil, n+1 for a
// (possibly empty) slice of length n.
func appendTagged(d []byte, n int, isNil bool) []byte {
	if isNil {
		return appendUvarint(d, 0)
	}
	return appendUvarint(d, uint64(n)+1)
}

func appendHeat(d []byte, m *heatmap.Matrix) []byte {
	d = appendTagged(d, len(m.Entities), m.Entities == nil)
	for _, e := range m.Entities {
		d = appendUvarint(d, uint64(e.ID))
	}
	for _, e := range m.Entities {
		d = appendF64(d, e.Score)
	}
	for _, e := range m.Entities {
		d = appendString(d, e.Name)
	}
	d = appendTagged(d, len(m.Features), m.Features == nil)
	for _, f := range m.Features {
		d = appendF64(d, f.R)
	}
	for _, f := range m.Features {
		d = appendString(d, f.Label)
	}
	d = appendTagged(d, len(m.Values), m.Values == nil)
	for _, row := range m.Values {
		d = appendTagged(d, len(row), row == nil)
		for _, v := range row {
			d = appendF64(d, v)
		}
	}
	d = appendTagged(d, len(m.Level), m.Level == nil)
	for _, row := range m.Level {
		d = appendTagged(d, len(row), row == nil)
		for _, v := range row {
			d = appendInt(d, v)
		}
	}
	return d
}

// DecodeState decodes a state message into st, reusing st's slice and
// heat-map capacity from a previous decode (the router's per-shard
// scratch). Every field is reset first, so a reused target never leaks
// stale areas into a response that omitted them.
func DecodeState(b []byte, st *apidto.StateV1DTO) error {
	r := &reader{b: b}
	if err := r.header(kindState); err != nil {
		return err
	}
	return decodeStateBody(r, st)
}

func decodeStateBody(r *reader, st *apidto.StateV1DTO) error {
	// Capture reusable capacity, then hard-reset the target. The old
	// elements stay readable through the captured slices (same backing
	// arrays), so string fields survive until the moment strInto either
	// reuses or replaces them — every field IS overwritten on success.
	desc := st.Description
	ents := st.Entities[:0]
	feats := st.Features[:0]
	tl := st.Timeline[:0]
	heat := st.Heat
	*st = apidto.StateV1DTO{}
	// The section loop is inlined (rather than using r.sections with a
	// callback) so the sub-reader stays stack-allocated — this decoder is
	// the scatter hot path and runs once per shard per request.
	for r.remaining() > 0 {
		id, err := r.byte()
		if err != nil {
			return err
		}
		n, err := r.count(1)
		if err != nil {
			return err
		}
		sub := reader{b: r.b[:r.off+n], off: r.off}
		sr := &sub
		r.off += n
		switch id {
		case secDescription:
			if b := sr.b[sr.off:]; string(b) == desc {
				st.Description = desc
			} else {
				st.Description = string(b)
			}
		case secEntities:
			var err error
			if st.Entities, err = decodeEntities(sr, ents); err != nil {
				return err
			}
		case secFeatures:
			n, err := sr.count(1)
			if err != nil {
				return err
			}
			if cap(feats) >= n {
				feats = feats[:n]
			} else {
				feats = make([]apidto.FeatureDTO, n)
			}
			for i := range feats {
				v, err := sr.uvarint()
				if err != nil {
					return err
				}
				feats[i].AnchorID = uint32(v)
			}
			for i := range feats {
				v, err := sr.f64()
				if err != nil {
					return err
				}
				feats[i].R = v
			}
			for i := range feats {
				v, err := sr.varint()
				if err != nil {
					return err
				}
				feats[i].ExtentSize = int(v)
			}
			for i := range feats {
				s, err := sr.strInto(feats[i].Label)
				if err != nil {
					return err
				}
				feats[i].Label = s
			}
			st.Features = feats
		case secHeat:
			m, err := decodeHeat(sr, heat)
			if err != nil {
				return err
			}
			st.Heat = m
		case secTimeline:
			n, err := sr.count(1)
			if err != nil {
				return err
			}
			if cap(tl) >= n {
				tl = tl[:n]
			} else {
				tl = make([]apidto.TimelineDTO, n)
			}
			for i := range tl {
				step, err := sr.varint()
				if err != nil {
					return err
				}
				kind, err := sr.strInto(tl[i].Kind)
				if err != nil {
					return err
				}
				label, err := sr.strInto(tl[i].Label)
				if err != nil {
					return err
				}
				rev, err := sr.varint()
				if err != nil {
					return err
				}
				chg, err := sr.bool()
				if err != nil {
					return err
				}
				tl[i] = apidto.TimelineDTO{
					Step: int(step), Kind: kind, Label: label,
					RevisitOf: int(rev), ChangesQuery: chg,
				}
			}
			st.Timeline = tl
		case secFallback:
			v, err := sr.bool()
			if err != nil {
				return err
			}
			st.Fallback = v
		}
	}
	return nil
}

func decodeEntities(sr *reader, scratch []apidto.EntityDTO) ([]apidto.EntityDTO, error) {
	n, err := sr.count(1)
	if err != nil {
		return nil, err
	}
	ents := scratch
	if cap(ents) >= n {
		ents = ents[:n]
	} else {
		ents = make([]apidto.EntityDTO, n)
	}
	for i := range ents {
		v, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		ents[i].ID = uint32(v)
	}
	for i := range ents {
		v, err := sr.f64()
		if err != nil {
			return nil, err
		}
		ents[i].Score = v
	}
	for i := range ents {
		s, err := sr.strInto(ents[i].Name)
		if err != nil {
			return nil, err
		}
		ents[i].Name = s
	}
	for i := range ents {
		s, err := sr.strInto(ents[i].Type)
		if err != nil {
			return nil, err
		}
		ents[i].Type = s
	}
	return ents, nil
}

// tagged reads the nil-aware length tag back: ok=false means nil.
func (r *reader) tagged(perElem int) (n int, ok bool, err error) {
	v, err := r.uvarint()
	if err != nil || v == 0 {
		return 0, false, err
	}
	v--
	if perElem < 1 {
		perElem = 1
	}
	// Empty-but-present slices consume no payload, so only guard n > 0.
	if v > 0 && v > uint64(r.remaining()/perElem) {
		return 0, false, r.fail(fmt.Sprintf("count %d exceeds remaining input", v))
	}
	return int(v), true, nil
}

func decodeHeat(sr *reader, old *heatmap.Matrix) (*heatmap.Matrix, error) {
	m := old
	if m == nil {
		m = &heatmap.Matrix{}
	}
	entAxis := m.Entities[:0]
	featAxis := m.Features[:0]
	values, level := m.Values, m.Level
	*m = heatmap.Matrix{}

	n, ok, err := sr.tagged(1)
	if err != nil {
		return nil, err
	}
	if ok {
		// A present tag must decode to a non-nil slice even at length 0:
		// the matrix fields carry no omitempty, so nil renders as null
		// and empty as [] — the distinction is part of byte-identity.
		if entAxis == nil {
			entAxis = []heatmap.EntityAxis{}
		}
		if cap(entAxis) >= n {
			entAxis = entAxis[:n]
		} else {
			entAxis = make([]heatmap.EntityAxis, n)
		}
		for i := range entAxis {
			v, err := sr.uvarint()
			if err != nil {
				return nil, err
			}
			entAxis[i].ID = rdf.TermID(v)
		}
		for i := range entAxis {
			v, err := sr.f64()
			if err != nil {
				return nil, err
			}
			entAxis[i].Score = v
		}
		for i := range entAxis {
			s, err := sr.strInto(entAxis[i].Name)
			if err != nil {
				return nil, err
			}
			entAxis[i].Name = s
		}
		m.Entities = entAxis
	}

	n, ok, err = sr.tagged(1)
	if err != nil {
		return nil, err
	}
	if ok {
		if featAxis == nil {
			featAxis = []heatmap.FeatureAxis{}
		}
		if cap(featAxis) >= n {
			featAxis = featAxis[:n]
		} else {
			featAxis = make([]heatmap.FeatureAxis, n)
		}
		for i := range featAxis {
			v, err := sr.f64()
			if err != nil {
				return nil, err
			}
			// Keep the old Label for strInto below; zero everything else
			// (Feature is json:"-" resolver state that must not leak
			// across decodes).
			featAxis[i] = heatmap.FeatureAxis{Label: featAxis[i].Label, R: v}
		}
		for i := range featAxis {
			s, err := sr.strInto(featAxis[i].Label)
			if err != nil {
				return nil, err
			}
			featAxis[i].Label = s
		}
		m.Features = featAxis
	}

	n, ok, err = sr.tagged(1)
	if err != nil {
		return nil, err
	}
	if ok {
		if values == nil {
			values = [][]float64{}
		}
		if cap(values) >= n {
			values = values[:n]
		} else {
			values = make([][]float64, n)
		}
		for i := range values {
			cols, colsOK, err := sr.tagged(8)
			if err != nil {
				return nil, err
			}
			if !colsOK {
				values[i] = nil
				continue
			}
			row := values[i]
			if row == nil {
				row = []float64{}
			}
			if cap(row) >= cols {
				row = row[:cols]
			} else {
				row = make([]float64, cols)
			}
			for c := range row {
				v, err := sr.f64()
				if err != nil {
					return nil, err
				}
				row[c] = v
			}
			values[i] = row
		}
		m.Values = values
	}

	n, ok, err = sr.tagged(1)
	if err != nil {
		return nil, err
	}
	if ok {
		if level == nil {
			level = [][]int{}
		}
		if cap(level) >= n {
			level = level[:n]
		} else {
			level = make([][]int, n)
		}
		for i := range level {
			cols, colsOK, err := sr.tagged(1)
			if err != nil {
				return nil, err
			}
			if !colsOK {
				level[i] = nil
				continue
			}
			row := level[i]
			if row == nil {
				row = []int{}
			}
			if cap(row) >= cols {
				row = row[:cols]
			} else {
				row = make([]int, cols)
			}
			for c := range row {
				v, err := sr.varint()
				if err != nil {
					return nil, err
				}
				row[c] = int(v)
			}
			level[i] = row
		}
		m.Level = level
	}
	return m, nil
}

// ---------------------------------------------------------------------
// OpsResponse

// AppendOpsResponse encodes the POST /api/v1/ops success body.
func AppendOpsResponse(dst []byte, applied int, st *apidto.StateV1DTO) []byte {
	dst = appendHeader(dst, kindOpsResponse)
	dst = appendInt(dst, applied)
	return appendStateBody(dst, st)
}

// DecodeOpsResponse decodes an ops-response message, reusing st like
// DecodeState does.
func DecodeOpsResponse(b []byte, applied *int, st *apidto.StateV1DTO) error {
	r := &reader{b: b}
	if err := r.header(kindOpsResponse); err != nil {
		return err
	}
	v, err := r.varint()
	if err != nil {
		return err
	}
	*applied = int(v)
	return decodeStateBody(r, st)
}

// ---------------------------------------------------------------------
// Ops request + session file (shared op-list encoding)

func appendOps(dst []byte, ops []core.OpDTO) []byte {
	dst = appendUvarint(dst, uint64(len(ops)))
	for _, op := range ops {
		dst = appendString(dst, op.Op)
		dst = appendString(dst, op.Keywords)
		dst = appendString(dst, op.Entity)
		dst = appendUvarint(dst, uint64(op.EntityID))
		dst = appendString(dst, op.Feature)
		dst = appendInt(dst, op.Step)
	}
	return dst
}

func (r *reader) ops() ([]core.OpDTO, error) {
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	ops := make([]core.OpDTO, n)
	for i := range ops {
		if ops[i].Op, err = r.str(); err != nil {
			return nil, err
		}
		if ops[i].Keywords, err = r.str(); err != nil {
			return nil, err
		}
		if ops[i].Entity, err = r.str(); err != nil {
			return nil, err
		}
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		ops[i].EntityID = uint32(id)
		if ops[i].Feature, err = r.str(); err != nil {
			return nil, err
		}
		step, err := r.varint()
		if err != nil {
			return nil, err
		}
		ops[i].Step = int(step)
	}
	return ops, nil
}

// AppendOpsRequest encodes the POST /api/v1/ops request body: the op
// batch plus the include selection (the ?include= query parameter still
// wins, exactly as with the JSON body).
func AppendOpsRequest(dst []byte, ops []core.OpDTO, include string) []byte {
	dst = appendHeader(dst, kindOpsRequest)
	dst = appendString(dst, include)
	return appendOps(dst, ops)
}

// DecodeOpsRequest decodes an ops-request message.
func DecodeOpsRequest(b []byte) (ops []core.OpDTO, include string, err error) {
	r := &reader{b: b}
	if err := r.header(kindOpsRequest); err != nil {
		return nil, "", err
	}
	if include, err = r.str(); err != nil {
		return nil, "", err
	}
	if ops, err = r.ops(); err != nil {
		return nil, "", err
	}
	return ops, include, nil
}

// AppendSessionFile encodes a replayable op log — the wire twin of the
// {"version":2,"ops":[...]} session file the router replays into
// repaired replicas.
func AppendSessionFile(dst []byte, version int, ops []core.OpDTO) []byte {
	dst = appendHeader(dst, kindSessionFile)
	dst = appendInt(dst, version)
	return appendOps(dst, ops)
}

// DecodeSessionFile decodes a session-file message.
func DecodeSessionFile(b []byte) (version int, ops []core.OpDTO, err error) {
	r := &reader{b: b}
	if err := r.header(kindSessionFile); err != nil {
		return 0, nil, err
	}
	v, err := r.varint()
	if err != nil {
		return 0, nil, err
	}
	if ops, err = r.ops(); err != nil {
		return 0, nil, err
	}
	return int(v), ops, nil
}
