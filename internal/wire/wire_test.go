package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"

	"pivote/internal/apidto"
	"pivote/internal/core"
	"pivote/internal/heatmap"
)

// fullState exercises every field the codec carries, including the
// nil-vs-empty cases that decide between null and [] in the heat map's
// JSON rendering.
func fullState() *apidto.StateV1DTO {
	return &apidto.StateV1DTO{
		Description: "Pivot on \"forrest gump\" → films",
		Entities: []apidto.EntityDTO{
			{ID: 7, Name: "Forrest Gump", Score: 0.9231, Type: "film"},
			{ID: 12, Name: "Tom Hanks", Score: math.Pi},
			{ID: 0, Name: "", Score: 0},
		},
		Features: []apidto.FeatureDTO{
			{Label: "starring → actor", AnchorID: 12, R: 0.75, ExtentSize: 41},
			{Label: "director", AnchorID: 3, R: -0.25, ExtentSize: 0},
		},
		Heat: &heatmap.Matrix{
			Entities: []heatmap.EntityAxis{
				{ID: 7, Name: "Forrest Gump", Score: 0.9231},
				{ID: 12, Name: "Tom Hanks", Score: 0.5},
			},
			Features: []heatmap.FeatureAxis{
				{Label: "starring", R: 0.75},
			},
			Values: [][]float64{
				{0.25, math.SmallestNonzeroFloat64},
				nil,
				{},
			},
			Level: [][]int{
				{0, 6},
				nil,
				{},
			},
		},
		Timeline: []apidto.TimelineDTO{
			{Step: 0, Kind: "query", Label: "forrest gump", ChangesQuery: true},
			{Step: 1, Kind: "pivot", Label: "starring", RevisitOf: -1},
		},
		Fallback: true,
	}
}

func sparseState() *apidto.StateV1DTO {
	return &apidto.StateV1DTO{Description: "only a description"}
}

// mustJSON is the byte-identity yardstick: two DTOs are equivalent iff
// encoding/json renders them identically, because that rendering is the
// public /api/v1 contract.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return b
}

func TestStateRoundTripJSONIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   *apidto.StateV1DTO
	}{
		{"full", fullState()},
		{"sparse", sparseState()},
		{"emptyHeat", &apidto.StateV1DTO{Description: "x", Heat: &heatmap.Matrix{}}},
		{"emptyAxes", &apidto.StateV1DTO{
			Description: "x",
			Heat: &heatmap.Matrix{
				Entities: []heatmap.EntityAxis{},
				Features: []heatmap.FeatureAxis{},
				Values:   [][]float64{},
				Level:    [][]int{},
			},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			enc := AppendState(nil, tc.st)
			var got apidto.StateV1DTO
			if err := DecodeState(enc, &got); err != nil {
				t.Fatalf("DecodeState: %v", err)
			}
			want, have := mustJSON(t, tc.st), mustJSON(t, &got)
			if !bytes.Equal(want, have) {
				t.Fatalf("JSON drift after wire round-trip:\nwant %s\ngot  %s", want, have)
			}
		})
	}
}

// TestDecodeStateReuse decodes a full state, then a sparse one, then a
// full one again into the SAME target — the router's per-shard scratch
// pattern. The sparse decode must not leak the previous decode's
// entities/heat/timeline, and the re-decode must be exact.
func TestDecodeStateReuse(t *testing.T) {
	full := AppendState(nil, fullState())
	sparse := AppendState(nil, sparseState())

	var st apidto.StateV1DTO
	if err := DecodeState(full, &st); err != nil {
		t.Fatalf("decode full: %v", err)
	}
	if err := DecodeState(sparse, &st); err != nil {
		t.Fatalf("decode sparse into reused target: %v", err)
	}
	if got, want := mustJSON(t, &st), mustJSON(t, sparseState()); !bytes.Equal(got, want) {
		t.Fatalf("reused target leaked prior decode:\nwant %s\ngot  %s", want, got)
	}
	if err := DecodeState(full, &st); err != nil {
		t.Fatalf("re-decode full: %v", err)
	}
	if got, want := mustJSON(t, &st), mustJSON(t, fullState()); !bytes.Equal(got, want) {
		t.Fatalf("re-decode into reused target drifted:\nwant %s\ngot  %s", want, got)
	}
}

func TestOpsResponseRoundTrip(t *testing.T) {
	enc := AppendOpsResponse(nil, 5, fullState())
	var applied int
	var st apidto.StateV1DTO
	if err := DecodeOpsResponse(enc, &applied, &st); err != nil {
		t.Fatalf("DecodeOpsResponse: %v", err)
	}
	if applied != 5 {
		t.Fatalf("applied = %d, want 5", applied)
	}
	want := mustJSON(t, apidto.OpsResponse{Applied: 5, State: *fullState()})
	got := mustJSON(t, apidto.OpsResponse{Applied: applied, State: st})
	if !bytes.Equal(want, got) {
		t.Fatalf("ops response drift:\nwant %s\ngot  %s", want, got)
	}
}

func sampleOps() []core.OpDTO {
	return []core.OpDTO{
		{Op: "submit", Keywords: "forrest gump"},
		{Op: "pivot_entity", Entity: "Tom Hanks", EntityID: 12},
		{Op: "pivot_feature", Feature: "starring"},
		{Op: "undo", Step: -2},
	}
}

func TestOpsRequestRoundTrip(t *testing.T) {
	for _, include := range []string{"", "entities,heat"} {
		enc := AppendOpsRequest(nil, sampleOps(), include)
		ops, inc, err := DecodeOpsRequest(enc)
		if err != nil {
			t.Fatalf("DecodeOpsRequest: %v", err)
		}
		if inc != include {
			t.Fatalf("include = %q, want %q", inc, include)
		}
		if !reflect.DeepEqual(ops, sampleOps()) {
			t.Fatalf("ops drift: %+v", ops)
		}
	}
	// Empty batch round-trips to nil ops, not a panic.
	ops, _, err := DecodeOpsRequest(AppendOpsRequest(nil, nil, "x"))
	if err != nil || ops != nil {
		t.Fatalf("empty batch: ops=%v err=%v", ops, err)
	}
}

func TestSessionFileRoundTrip(t *testing.T) {
	enc := AppendSessionFile(nil, 2, sampleOps())
	ver, ops, err := DecodeSessionFile(enc)
	if err != nil {
		t.Fatalf("DecodeSessionFile: %v", err)
	}
	if ver != 2 {
		t.Fatalf("version = %d, want 2", ver)
	}
	if !reflect.DeepEqual(ops, sampleOps()) {
		t.Fatalf("ops drift: %+v", ops)
	}
}

// TestKindMismatch: a valid message of one kind must be rejected with a
// typed error by every other kind's decoder, never misparsed.
func TestKindMismatch(t *testing.T) {
	state := AppendState(nil, fullState())
	var de *DecodeError
	if _, _, err := DecodeOpsRequest(state); !errors.As(err, &de) {
		t.Fatalf("DecodeOpsRequest(state message) = %v, want *DecodeError", err)
	}
	var applied int
	var st apidto.StateV1DTO
	if err := DecodeOpsResponse(state, &applied, &st); !errors.As(err, &de) {
		t.Fatalf("DecodeOpsResponse(state message) = %v, want *DecodeError", err)
	}
}

// TestTruncationTyped: every proper prefix of a valid encoding either
// decodes cleanly (section streams may end early at a section boundary)
// or fails with a typed *DecodeError — never a panic, never an
// untyped error.
func TestTruncationTyped(t *testing.T) {
	enc := AppendOpsResponse(nil, 3, fullState())
	for cut := 0; cut < len(enc); cut++ {
		var applied int
		var st apidto.StateV1DTO
		err := DecodeOpsResponse(enc[:cut], &applied, &st)
		if err == nil {
			continue
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("cut=%d: error %v is not a *DecodeError", cut, err)
		}
		if de.Off < 0 || de.Off > cut {
			t.Fatalf("cut=%d: offset %d out of range", cut, de.Off)
		}
	}
}

// TestCorruptHeaderTyped covers the rejects the truncation sweep can't
// reach: wrong magic, future version, unknown kind.
func TestCorruptHeaderTyped(t *testing.T) {
	var st apidto.StateV1DTO
	var de *DecodeError
	for _, b := range [][]byte{
		{'X', 'V', 'W', 1, kindState},
		{'P', 'V', 'W', 99, kindState},
		{'P', 'V', 'W', 1, 42},
		{},
	} {
		if err := DecodeState(b, &st); !errors.As(err, &de) {
			t.Fatalf("header %v: error %v is not a *DecodeError", b, err)
		}
	}
}

// TestCountGuard: a count field claiming more elements than the input
// could hold must be rejected before allocation, not after.
func TestCountGuard(t *testing.T) {
	b := appendHeader(nil, kindOpsRequest)
	b = appendString(b, "")
	// Claim 2^40 ops with two bytes of payload behind the claim.
	b = appendUvarint(b, 1<<40)
	b = append(b, 0, 0)
	_, _, err := DecodeOpsRequest(b)
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("oversized count: %v, want *DecodeError", err)
	}
}

// TestUnknownSectionSkipped: decoders must step over section ids they
// don't know — that is the forward-compatibility contract.
func TestUnknownSectionSkipped(t *testing.T) {
	enc := AppendState(nil, sparseState())
	enc = append(enc, 200)               // unknown section id
	enc = appendUvarint(enc, 3)          // 3-byte payload
	enc = append(enc, 0xde, 0xad, 0xbf)  // opaque future data
	enc = appendSection(enc, secFallback, func(d []byte) []byte {
		return appendBool(d, true)
	})
	var st apidto.StateV1DTO
	if err := DecodeState(enc, &st); err != nil {
		t.Fatalf("DecodeState with unknown section: %v", err)
	}
	if st.Description != "only a description" || !st.Fallback {
		t.Fatalf("sections around the unknown one lost: %+v", st)
	}
}

func TestAppendStateNoAllocsOnWarmDst(t *testing.T) {
	st := fullState()
	dst := AppendState(nil, st)
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendState(dst[:0], st)
	})
	if allocs > 0 {
		t.Fatalf("AppendState into warm buffer allocates %.0f/op, want 0", allocs)
	}
}

// FuzzDecodeWire drives all four decoders over arbitrary bytes: no
// panics, every failure a typed *DecodeError, and anything that decodes
// must survive a re-encode → re-decode loop with identical JSON (so a
// lucky parse can't smuggle in a state the encoder couldn't produce
// without the round-trip exposing it).
func FuzzDecodeWire(f *testing.F) {
	f.Add(AppendState(nil, fullState()))
	f.Add(AppendState(nil, sparseState()))
	f.Add(AppendOpsResponse(nil, 3, fullState()))
	f.Add(AppendOpsRequest(nil, sampleOps(), "entities"))
	f.Add(AppendSessionFile(nil, 2, sampleOps()))
	f.Add([]byte{'P', 'V', 'W', 1, kindState})
	f.Add([]byte{'P', 'V', 'W', 2, kindState, 0, 0})
	f.Add([]byte{})

	check := func(t *testing.T, err error) {
		if err == nil {
			return
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("untyped decode error: %v", err)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var st apidto.StateV1DTO
		if err := DecodeState(data, &st); err == nil {
			enc := AppendState(nil, &st)
			var st2 apidto.StateV1DTO
			if err := DecodeState(enc, &st2); err != nil {
				t.Fatalf("re-decode of re-encoded state: %v", err)
			}
			a, _ := json.Marshal(&st)
			b, _ := json.Marshal(&st2)
			if !bytes.Equal(a, b) {
				t.Fatalf("state re-encode drift:\n%s\n%s", a, b)
			}
		} else {
			check(t, err)
		}

		var applied int
		var or apidto.StateV1DTO
		check(t, DecodeOpsResponse(data, &applied, &or))

		if ops, include, err := DecodeOpsRequest(data); err == nil {
			ops2, include2, err := DecodeOpsRequest(AppendOpsRequest(nil, ops, include))
			if err != nil || include2 != include || !reflect.DeepEqual(ops, ops2) {
				t.Fatalf("ops request re-encode drift: %v", err)
			}
		} else {
			check(t, err)
		}

		if ver, ops, err := DecodeSessionFile(data); err == nil {
			ver2, ops2, err := DecodeSessionFile(AppendSessionFile(nil, ver, ops))
			if err != nil || ver2 != ver || !reflect.DeepEqual(ops, ops2) {
				t.Fatalf("session file re-encode drift: %v", err)
			}
		} else {
			check(t, err)
		}
	})
}
