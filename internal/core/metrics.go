package core

import (
	"time"

	"pivote/internal/obs"
)

// Process-wide engine metrics. Registered once; every Engine in the
// process (all shards, all replicas of an in-process cluster) shares
// them, which is exactly what a per-process /metrics scrape wants.
var (
	stageHist      [obs.NumStages]*obs.Histogram
	opSeconds      map[OpKind]*obs.Histogram
	opsTotal       map[OpKind]*obs.Counter
	opBatchSeconds  *obs.Histogram
	opErrorsTotal   *obs.Counter
	evalCacheHits   *obs.Counter
	evalCacheMisses *obs.Counter
)

func init() {
	// Heatmap is the last engine-side stage; scatter belongs to the
	// shard router and is recorded there.
	for s := obs.StageSearch; s <= obs.StageHeatmap; s++ {
		stageHist[s] = obs.Default.Histogram("pivote_engine_stage_seconds",
			"Engine evaluation time by stage.", obs.L("stage", s.String()))
	}
	kinds := []OpKind{
		OpKindSubmit, OpKindAddSeed, OpKindRemoveSeed,
		OpKindAddFeature, OpKindRemoveFeature,
		OpKindLookup, OpKindPivot, OpKindRevisit,
	}
	opSeconds = make(map[OpKind]*obs.Histogram, len(kinds))
	opsTotal = make(map[OpKind]*obs.Counter, len(kinds))
	for _, k := range kinds {
		opSeconds[k] = obs.Default.Histogram("pivote_op_seconds",
			"Apply latency (session mutation + evaluation) by op kind.",
			obs.L("kind", string(k)))
		opsTotal[k] = obs.Default.Counter("pivote_ops_total",
			"Operations applied by kind.", obs.L("kind", string(k)))
	}
	opBatchSeconds = obs.Default.Histogram("pivote_op_seconds",
		"Apply latency (session mutation + evaluation) by op kind.",
		obs.L("kind", "batch"))
	opErrorsTotal = obs.Default.Counter("pivote_op_errors_total",
		"Operations rejected (validation, cancellation, evaluation failure).")
	evalCacheHits = obs.Default.Counter("pivote_eval_cache_total",
		"State evaluations served from the memoized last result.", obs.L("result", "hit"))
	evalCacheMisses = obs.Default.Counter("pivote_eval_cache_total",
		"State evaluations served from the memoized last result.", obs.L("result", "miss"))
}

// stageStart returns the stage clock, or the zero Time when
// instrumentation is off — stageEnd treats zero as "skip", so the
// disabled path costs one atomic load and two branches.
func stageStart() time.Time {
	if !obs.On() {
		return time.Time{}
	}
	return time.Now()
}

// stageEnd records the elapsed stage time into the process histogram
// and the request's Recorder (nil-safe).
func stageEnd(rec *obs.Recorder, s obs.Stage, t0 time.Time) {
	if t0.IsZero() {
		return
	}
	d := time.Since(t0)
	stageHist[s].Observe(d)
	rec.Add(s, d)
}
