package core

import (
	"strings"
	"testing"

	"pivote/internal/kgtest"
	"pivote/internal/semfeat"
)

func TestSessionPersistRoundTrip(t *testing.T) {
	e, f := newEngine(t)
	e.Submit("forrest gump")
	e.AddSeed(f.E("Forrest_Gump"))
	th := semfeat.Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:starring"), Dir: semfeat.Backward}
	e.AddFeature(th)
	want := e.Evaluate()

	raw, err := e.SaveSession()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "Tom_Hanks:starring") {
		t.Fatal("saved session lacks symbolic feature")
	}
	if !strings.Contains(string(raw), "Forrest_Gump") {
		t.Fatal("saved session lacks entity IRI")
	}

	// Load into a brand-new engine over a freshly built graph (new term
	// IDs): the symbolic references must re-resolve.
	f2 := kgtest.Build()
	e2 := New(f2.Graph, Options{TopEntities: 10, TopFeatures: 8})
	got, err := e2.LoadSession(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Description != want.Description {
		t.Fatalf("descriptions differ: %q vs %q", got.Description, want.Description)
	}
	if len(got.Entities) != len(want.Entities) {
		t.Fatalf("result sizes differ: %d vs %d", len(got.Entities), len(want.Entities))
	}
	for i := range got.Entities {
		if got.Entities[i].Name != want.Entities[i].Name {
			t.Fatalf("entity %d differs: %s vs %s", i, got.Entities[i].Name, want.Entities[i].Name)
		}
	}
	// Timeline survives, so revisit works after reload.
	if _, err := e2.Revisit(1); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSessionRejectsForeignReferences(t *testing.T) {
	e, f := newEngine(t)
	e.AddSeed(f.E("Forrest_Gump"))
	raw, err := e.SaveSession()
	if err != nil {
		t.Fatal(err)
	}
	broken := strings.ReplaceAll(string(raw), "Forrest_Gump", "Not_A_Real_Entity")
	if _, err := e.LoadSession([]byte(broken)); err == nil {
		t.Fatal("no error for unknown entity reference")
	}
}
