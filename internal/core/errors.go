package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrKind classifies engine errors so transports can map them uniformly
// (the HTTP server translates kinds to status codes, the wire envelope
// carries the kind string verbatim).
type ErrKind string

const (
	// KindNotFound: the operation references an entity, feature anchor
	// or step that does not exist in the graph or session.
	KindNotFound ErrKind = "not_found"
	// KindInvalid: the operation itself is malformed — unknown op kind,
	// unparsable feature, bad field selector, out-of-range revisit.
	KindInvalid ErrKind = "invalid"
	// KindCanceled: the caller's context was canceled (or its deadline
	// exceeded) while the operation was in flight. The session state is
	// unchanged.
	KindCanceled ErrKind = "canceled"
	// KindInternal: everything else.
	KindInternal ErrKind = "internal"
)

// Error is the engine's typed error: a kind plus a human-readable
// message, optionally wrapping a cause.
type Error struct {
	Kind ErrKind
	Msg  string
	Err  error
}

func (e *Error) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	if e.Err != nil {
		return e.Err.Error()
	}
	return string(e.Kind)
}

func (e *Error) Unwrap() error { return e.Err }

// Errf builds a typed error with a formatted message.
func Errf(kind ErrKind, format string, args ...interface{}) *Error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// KindOf extracts the kind of an error: the Error's own kind when it is
// (or wraps) one, KindCanceled for context cancellation/deadline errors,
// KindInternal for anything else, and "" for nil.
func KindOf(err error) ErrKind {
	if err == nil {
		return ""
	}
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Kind
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return KindCanceled
	}
	return KindInternal
}

// asTyped normalizes an arbitrary error into a typed one, so every error
// leaving the engine carries a kind. Context errors become KindCanceled.
func asTyped(err error) error {
	if err == nil {
		return nil
	}
	var ce *Error
	if errors.As(err, &ce) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &Error{Kind: KindCanceled, Msg: "operation canceled: " + err.Error(), Err: err}
	}
	return &Error{Kind: KindInternal, Msg: err.Error(), Err: err}
}
