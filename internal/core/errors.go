package core

import (
	"context"
	"errors"

	"pivote/internal/errs"
)

// The typed error lives in the leaf package errs so that lower layers
// (search, index) can produce typed errors without importing core; the
// aliases below keep core.Error the canonical name transports match on.

// ErrKind classifies engine errors so transports can map them uniformly
// (the HTTP server translates kinds to status codes, the wire envelope
// carries the kind string verbatim).
type ErrKind = errs.Kind

const (
	// KindNotFound: the operation references an entity, feature anchor
	// or step that does not exist in the graph or session.
	KindNotFound = errs.KindNotFound
	// KindInvalid: the operation itself is malformed — unknown op kind,
	// unparsable feature, bad field selector, out-of-range revisit,
	// invalid retrieval parameters.
	KindInvalid = errs.KindInvalid
	// KindCanceled: the caller's context was canceled (or its deadline
	// exceeded) while the operation was in flight. The session state is
	// unchanged.
	KindCanceled = errs.KindCanceled
	// KindInternal: everything else.
	KindInternal = errs.KindInternal
	// KindUnavailable: a backend the operation depends on (a shard behind
	// the scatter-gather router) could not be reached after retry.
	KindUnavailable = errs.KindUnavailable
)

// Error is the engine's typed error: a kind plus a human-readable
// message, optionally wrapping a cause.
type Error = errs.Error

// Errf builds a typed error with a formatted message.
func Errf(kind ErrKind, format string, args ...interface{}) *Error {
	return errs.Errf(kind, format, args...)
}

// KindOf extracts the kind of an error: the Error's own kind when it is
// (or wraps) one, KindCanceled for context cancellation/deadline errors,
// KindInternal for anything else, and "" for nil.
func KindOf(err error) ErrKind { return errs.KindOf(err) }

// asTyped normalizes an arbitrary error into a typed one, so every error
// leaving the engine carries a kind. Context errors become KindCanceled.
func asTyped(err error) error {
	if err == nil {
		return nil
	}
	var ce *Error
	if errors.As(err, &ce) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &Error{Kind: KindCanceled, Msg: "operation canceled: " + err.Error(), Err: err}
	}
	return &Error{Kind: KindInternal, Msg: err.Error(), Err: err}
}
