package core_test

import (
	"sync"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kg"
	"pivote/internal/obs"
	"pivote/internal/synth"
)

var (
	submitOnce  sync.Once
	submitGraph *kg.Graph
)

func submitSetup() *kg.Graph {
	submitOnce.Do(func() {
		submitGraph = synth.Generate(synth.Scaled(300)).Graph
	})
	return submitGraph
}

// BenchmarkSubmit measures one full interactive turn: keyword retrieval,
// pseudo-seed feature ranking and the heat map, i.e. what one POST
// /api/query costs once the engine is warm.
func BenchmarkSubmit(b *testing.B) {
	g := submitSetup()
	eng := core.New(g, core.Options{})
	eng.Submit("forrest gump") // warm caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.Submit("forrest gump")
		if len(res.Entities) == 0 {
			b.Fatal("no entities")
		}
	}
}

// BenchmarkPivot measures the pivot operation (switch domain, re-expand)
// on a warm engine.
func BenchmarkPivot(b *testing.B) {
	g := submitSetup()
	eng := core.New(g, core.Options{})
	ent := g.EntityByName("Forrest_Gump")
	eng.Pivot(ent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.Pivot(ent)
		if len(res.Entities) == 0 {
			b.Fatal("no entities")
		}
	}
}

// BenchmarkSubmitUninstrumented is BenchmarkSubmit with the obs layer
// switched off: the delta between the two is the true cost of stage
// timing + op metrics on the hot path, gated at ≤1.10× in
// benchgates.json via BENCH_obs.json.
func BenchmarkSubmitUninstrumented(b *testing.B) {
	g := submitSetup()
	eng := core.New(g, core.Options{})
	eng.Submit("forrest gump")
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.Submit("forrest gump")
		if len(res.Entities) == 0 {
			b.Fatal("no entities")
		}
	}
}
