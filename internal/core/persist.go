package core

import (
	"context"
	"encoding/json"
	"fmt"

	"pivote/internal/session"
)

// wrapf retags an error with context while preserving its kind.
func wrapf(err error, format string, args ...interface{}) *Error {
	return &Error{Kind: KindOf(err), Msg: fmt.Sprintf(format, args...) + ": " + err.Error(), Err: err}
}

// A session file is a replayable op log: the versioned JSON form of
// Engine.Ops() with symbolic references (IRIs, anchor:predicate labels)
// that survive graph rebuilds. Loading replays the ops through ApplyOps,
// which reconstructs the timeline — there is no separate timeline
// serialization.
//
// Version history:
//
//	v2 (current): {"version":2,"ops":[{"op":"submit",...},...]}
//	v1 (legacy):  per-action query snapshots; accepted on load by
//	              synthesizing ops for the final query (the historical
//	              timeline of a v1 file is not reconstructed).
type sessionFile struct {
	Version int     `json:"version"`
	Ops     []OpDTO `json:"ops"`
}

// legacySessionFile is the shape of the retired v1 format, parsed only
// deeply enough to recover the final query.
type legacySessionFile struct {
	Version int `json:"version"`
	Actions []struct {
		Query struct {
			Keywords string   `json:"keywords"`
			Seeds    []string `json:"seeds"`
			Features []string `json:"features"`
		} `json:"query"`
	} `json:"actions"`
}

// SaveSession serializes the op log — and therefore the timeline and the
// live query — as portable JSON.
func (e *Engine) SaveSession() ([]byte, error) {
	f := sessionFile{Version: 2, Ops: make([]OpDTO, 0, len(e.log))}
	for _, op := range e.log {
		f.Ops = append(f.Ops, EncodeOp(e.Graph(), op))
	}
	return json.MarshalIndent(f, "", "  ")
}

// LoadSession replaces the session with a previously saved one by
// replaying its op log. The graph must contain every entity and
// predicate the ops reference.
func (e *Engine) LoadSession(data []byte) (*Result, error) {
	return e.LoadSessionCtx(context.Background(), data)
}

// LoadSessionCtx is LoadSession with cancellation; a failed or canceled
// load leaves the current session untouched.
func (e *Engine) LoadSessionCtx(ctx context.Context, data []byte) (*Result, error) {
	ops, err := decodeSessionOps(e, data)
	if err != nil {
		return nil, err
	}
	oldSess, oldLog := e.sess, e.log
	e.sess, e.log = session.New(), nil
	res, i, err := e.ApplyOps(ctx, ops, FieldsAll)
	if err != nil {
		e.sess, e.log = oldSess, oldLog
		if i < len(ops) {
			return nil, wrapf(err, "session: op %d", i)
		}
		return nil, err
	}
	return res, nil
}

func decodeSessionOps(e *Engine, data []byte) ([]Op, error) {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, &Error{Kind: KindInvalid, Msg: "session: " + err.Error(), Err: err}
	}
	switch probe.Version {
	case 2:
		var f sessionFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, &Error{Kind: KindInvalid, Msg: "session: " + err.Error(), Err: err}
		}
		ops := make([]Op, 0, len(f.Ops))
		for i, d := range f.Ops {
			op, err := DecodeOp(e.Graph(), d)
			if err != nil {
				return nil, wrapf(err, "session: op %d", i)
			}
			ops = append(ops, op)
		}
		return ops, nil
	case 1:
		var f legacySessionFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, &Error{Kind: KindInvalid, Msg: "session: " + err.Error(), Err: err}
		}
		if len(f.Actions) == 0 {
			return nil, nil
		}
		// Only the final query is recoverable from a v1 file; synthesize
		// the ops that rebuild it.
		q := f.Actions[len(f.Actions)-1].Query
		var dtos []OpDTO
		if q.Keywords != "" {
			dtos = append(dtos, OpDTO{Op: string(OpKindSubmit), Keywords: q.Keywords})
		}
		for _, iri := range q.Seeds {
			dtos = append(dtos, OpDTO{Op: string(OpKindAddSeed), Entity: iri})
		}
		for _, label := range q.Features {
			dtos = append(dtos, OpDTO{Op: string(OpKindAddFeature), Feature: label})
		}
		ops := make([]Op, 0, len(dtos))
		for i, d := range dtos {
			op, err := DecodeOp(e.Graph(), d)
			if err != nil {
				return nil, wrapf(err, "session: v1 op %d", i)
			}
			ops = append(ops, op)
		}
		return ops, nil
	default:
		return nil, Errf(KindInvalid, "session: unsupported version %d", probe.Version)
	}
}
