package core

import (
	"fmt"

	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
	"pivote/internal/session"
)

// graphResolver implements session.Resolver over the knowledge graph:
// entities persist as IRIs, features as anchor:predicate labels.
type graphResolver struct {
	g *kg.Graph
}

func (r graphResolver) EntityIRI(e rdf.TermID) string {
	return r.g.Dict().Term(e).Value
}

func (r graphResolver) ResolveEntity(iri string) (rdf.TermID, error) {
	if id := r.g.EntityByName(iri); id != rdf.NoTerm {
		return id, nil
	}
	return rdf.NoTerm, fmt.Errorf("unknown entity %q", iri)
}

func (r graphResolver) FeatureLabel(f semfeat.Feature) string {
	return semfeat.Label(r.g, f)
}

func (r graphResolver) ResolveFeature(label string) (semfeat.Feature, error) {
	return semfeat.Parse(r.g, label)
}

// SaveSession serializes the whole timeline (and therefore the live
// query) as portable JSON.
func (e *Engine) SaveSession() ([]byte, error) {
	return e.sess.Save(graphResolver{e.g})
}

// LoadSession replaces the session with a previously saved one and
// evaluates its live query. The graph must contain every entity and
// predicate the saved session references.
func (e *Engine) LoadSession(data []byte) (*Result, error) {
	s, err := session.Load(data, graphResolver{e.g})
	if err != nil {
		return nil, err
	}
	e.sess = s
	return e.evaluate(), nil
}
