package core

import (
	"context"
	"encoding/json"
	"fmt"

	"pivote/internal/session"
)

// wrapf retags an error with context while preserving its kind.
func wrapf(err error, format string, args ...interface{}) *Error {
	return &Error{Kind: KindOf(err), Msg: fmt.Sprintf(format, args...) + ": " + err.Error(), Err: err}
}

// A session file is a replayable op log: the versioned JSON form of
// Engine.Ops() with symbolic references (IRIs, anchor:predicate labels)
// that survive graph rebuilds. Loading replays the ops through ApplyOps,
// which reconstructs the timeline — there is no separate timeline
// serialization.
//
// Version history:
//
//	v2 (current): {"version":2,"ops":[{"op":"submit",...},...]}
//	v1 (legacy):  per-action query snapshots; accepted on load by
//	              synthesizing ops for the final query (the historical
//	              timeline of a v1 file is not reconstructed).
type sessionFile struct {
	Version int     `json:"version"`
	Ops     []OpDTO `json:"ops"`
}

// legacySessionFile is the shape of the retired v1 format, parsed only
// deeply enough to recover the final query.
type legacySessionFile struct {
	Version int `json:"version"`
	Actions []struct {
		Query struct {
			Keywords string   `json:"keywords"`
			Seeds    []string `json:"seeds"`
			Features []string `json:"features"`
		} `json:"query"`
	} `json:"actions"`
}

// SaveSession serializes the op log — and therefore the timeline and the
// live query — as portable JSON.
func (e *Engine) SaveSession() ([]byte, error) {
	f := sessionFile{Version: 2, Ops: make([]OpDTO, 0, len(e.log))}
	for _, op := range e.log {
		f.Ops = append(f.Ops, EncodeOp(e.Graph(), op))
	}
	return json.MarshalIndent(f, "", "  ")
}

// LoadSession replaces the session with a previously saved one by
// replaying its op log. The graph must contain every entity and
// predicate the ops reference.
func (e *Engine) LoadSession(data []byte) (*Result, error) {
	return e.LoadSessionCtx(context.Background(), data)
}

// LoadSessionCtx is LoadSession with cancellation; a failed or canceled
// load leaves the current session untouched.
func (e *Engine) LoadSessionCtx(ctx context.Context, data []byte) (*Result, error) {
	res, _, err := e.ReplaySessionCtx(ctx, data, FieldsAll)
	return res, err
}

// ReplaySessionCtx is LoadSessionCtx with field selection and an op
// index: on an op-scoped failure (decode or replay) the returned index
// identifies the offending op of the file, mirroring ApplyOps, so the
// HTTP session endpoint can serve the same error envelope as the ops
// endpoint. The index is -1 when the failure is not op-scoped (bad
// JSON, unsupported version, canceled evaluation).
func (e *Engine) ReplaySessionCtx(ctx context.Context, data []byte, fields Fields) (*Result, int, error) {
	ops, idx, err := decodeSessionOps(e, data)
	if err != nil {
		return nil, idx, err
	}
	return e.replayOps(ctx, ops, fields)
}

// ReplayDTOsCtx is ReplaySessionCtx over already-decoded op DTOs — the
// entry point for the binary session-file codec, whose decoder lives
// outside this package. Error envelopes (indices, "session: op N"
// wrapping) are identical to the JSON path, so a client cannot tell
// which encoding carried the replay.
func (e *Engine) ReplayDTOsCtx(ctx context.Context, dtos []OpDTO, fields Fields) (*Result, int, error) {
	ops := make([]Op, 0, len(dtos))
	for i, d := range dtos {
		op, err := DecodeOp(e.Graph(), d)
		if err != nil {
			return nil, i, wrapf(err, "session: op %d", i)
		}
		ops = append(ops, op)
	}
	return e.replayOps(ctx, ops, fields)
}

// replayOps swaps in a fresh session, applies the ops, and restores the
// previous session wholesale on any failure.
func (e *Engine) replayOps(ctx context.Context, ops []Op, fields Fields) (*Result, int, error) {
	oldSess, oldLog := e.sess, e.log
	e.sess, e.log = session.New(), nil
	res, i, err := e.ApplyOps(ctx, ops, fields)
	if err != nil {
		e.sess, e.log = oldSess, oldLog
		if i < len(ops) {
			return nil, i, wrapf(err, "session: op %d", i)
		}
		return nil, -1, err
	}
	return res, -1, nil
}

// DecodeSessionDTOs extracts the replayable op DTOs from a session file
// without touching any graph: v2 files carry them verbatim, v1 files
// have them synthesized from the final query. Graph-free so a
// scatter-gather router can canonicalize an uploaded session into its
// own op log before fanning the replay out to the shards.
func DecodeSessionDTOs(data []byte) ([]OpDTO, error) {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, &Error{Kind: KindInvalid, Msg: "session: " + err.Error(), Err: err}
	}
	switch probe.Version {
	case 2:
		var f sessionFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, &Error{Kind: KindInvalid, Msg: "session: " + err.Error(), Err: err}
		}
		return f.Ops, nil
	case 1:
		var f legacySessionFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, &Error{Kind: KindInvalid, Msg: "session: " + err.Error(), Err: err}
		}
		if len(f.Actions) == 0 {
			return nil, nil
		}
		// Only the final query is recoverable from a v1 file; synthesize
		// the ops that rebuild it.
		q := f.Actions[len(f.Actions)-1].Query
		var dtos []OpDTO
		if q.Keywords != "" {
			dtos = append(dtos, OpDTO{Op: string(OpKindSubmit), Keywords: q.Keywords})
		}
		for _, iri := range q.Seeds {
			dtos = append(dtos, OpDTO{Op: string(OpKindAddSeed), Entity: iri})
		}
		for _, label := range q.Features {
			dtos = append(dtos, OpDTO{Op: string(OpKindAddFeature), Feature: label})
		}
		return dtos, nil
	default:
		return nil, Errf(KindInvalid, "session: unsupported version %d", probe.Version)
	}
}

func decodeSessionOps(e *Engine, data []byte) ([]Op, int, error) {
	dtos, err := DecodeSessionDTOs(data)
	if err != nil {
		return nil, -1, err
	}
	ops := make([]Op, 0, len(dtos))
	for i, d := range dtos {
		op, err := DecodeOp(e.Graph(), d)
		if err != nil {
			return nil, i, wrapf(err, "session: op %d", i)
		}
		ops = append(ops, op)
	}
	return ops, -1, nil
}
