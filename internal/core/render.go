package core

import (
	"fmt"
	"strings"

	"pivote/internal/viz"
)

// RenderASCII assembles the whole workspace of Fig. 3 as text: the query
// area (a/b), the entity recommendation area (c), the semantic-feature
// recommendation area (e), the explanation heat map (f) and the timeline
// (g). The entity presentation area (d) is produced by Engine.Lookup.
func (r *Result) RenderASCII() string {
	var b strings.Builder
	b.WriteString("┌─ query (a,b) ─────────────────────────────────────\n")
	fmt.Fprintf(&b, "│ %s\n", r.Description)
	b.WriteString("├─ entities (c) ────────────────────────────────────\n")
	if len(r.Entities) == 0 {
		b.WriteString("│ (none)\n")
	}
	for i, e := range r.Entities {
		fmt.Fprintf(&b, "│ %2d. %-36s %10.6f\n", i+1, viz.Truncate(e.Name, 36), e.Score)
	}
	b.WriteString("├─ semantic features (e) ───────────────────────────\n")
	if len(r.Features) == 0 {
		b.WriteString("│ (none)\n")
	}
	for i, f := range r.Features {
		fmt.Fprintf(&b, "│ %2d. %-36s r=%.6f |E|=%d\n", i+1, viz.Truncate(f.Label, 36), f.R, f.ExtentSize)
	}
	b.WriteString("├─ explanation heat map (f) ────────────────────────\n")
	if r.Heat != nil && len(r.Heat.Features) > 0 && len(r.Heat.Entities) > 0 {
		for _, line := range strings.Split(strings.TrimRight(r.Heat.ASCII(), "\n"), "\n") {
			fmt.Fprintf(&b, "│ %s\n", line)
		}
	} else {
		b.WriteString("│ (empty)\n")
	}
	b.WriteString("├─ timeline (g) ────────────────────────────────────\n")
	for _, a := range r.Timeline {
		fmt.Fprintf(&b, "│ [%d] %s\n", a.Step, a.Label)
	}
	b.WriteString("└───────────────────────────────────────────────────\n")
	return b.String()
}

// ArchitectureDOT emits the component diagram of Fig. 2: the user
// interface talking to the search and recommendation engines over the
// knowledge graph store.
func ArchitectureDOT() string {
	return `digraph pivote_architecture {
  rankdir=TB;
  node [shape=box, style=rounded];
  ui [label="User Interface\n(query area, entity/feature areas,\nheat map, timeline)"];
  search [label="Search Engine\n(five-field MLM retrieval)"];
  recommend [label="Recommendation Engine\n(SF ranking + entity set expansion)"];
  sessionstate [label="Session\n(query state, timeline,\nexploratory path)"];
  index [label="Fielded Inverted Index"];
  sf [label="Semantic Feature Engine\n(extents, p(pi|e), r(pi,Q))"];
  kgstore [label="Knowledge Graph Store\n(dictionary-encoded triples,\nSPO/POS adjacency)"];
  ui -> search [label="keyword query"];
  ui -> recommend [label="seeds / features / pivot"];
  ui -> sessionstate [label="actions"];
  search -> index;
  recommend -> sf;
  index -> kgstore;
  sf -> kgstore;
}
`
}
