// Package core is the PivotE engine: it wires the search engine (§2.2),
// the recommendation engine (§2.3) and the session state into the
// interaction loop of the paper's interface (Fig. 2 architecture, Fig. 3
// workspace). Every user operation — submitting keywords, adding/removing
// example entities and semantic-feature conditions, looking up profiles,
// pivoting across domains, revisiting the timeline — returns the full
// interface state: ranked entities (x-axis), ranked semantic features
// (y-axis), the seven-level correlation heat map, and the timeline.
package core

import (
	"context"
	"fmt"

	"pivote/internal/expand"
	"pivote/internal/heatmap"
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/semfeat"
	"pivote/internal/session"
	"pivote/internal/topk"
)

// Options configure an Engine; zero values select the documented
// defaults.
type Options struct {
	// TopEntities is the x-axis size (default 20).
	TopEntities int
	// TopFeatures is the y-axis size (default 15).
	TopFeatures int
	// PseudoSeeds is how many top keyword hits seed the feature
	// recommendation after a plain keyword query (default 3).
	PseudoSeeds int
	// SearchModel is the retrieval model for keyword queries (default
	// the paper's MLM).
	SearchModel search.Model
	// SearchParams override the retrieval hyperparameters when non-nil.
	SearchParams *search.Params
	// Expand configures the recommendation engine. SameTypeOnly defaults
	// to true (investigation keeps one domain on the x-axis).
	Expand *expand.Options
	// Features configures the semantic-feature model (ablations).
	Features semfeat.Options
}

func (o Options) withDefaults() Options {
	if o.TopEntities <= 0 {
		o.TopEntities = 20
	}
	if o.TopFeatures <= 0 {
		o.TopFeatures = 15
	}
	if o.PseudoSeeds <= 0 {
		o.PseudoSeeds = 3
	}
	if o.Expand == nil {
		o.Expand = &expand.Options{SameTypeOnly: true}
	}
	return o
}

// Result is the assembled interface state after an operation — the five
// areas of Fig. 3.
type Result struct {
	// Query is the live query (area b) and Description its rendering.
	Query       session.Query
	Description string
	// Entities is the recommendation area (c): the x-axis.
	Entities []expand.Ranked
	// Features is the semantic-feature area (e): the y-axis.
	Features []semfeat.Score
	// Heat is the explanation area (f).
	Heat *heatmap.Matrix
	// Timeline is the query history (g).
	Timeline []session.Action
}

// Shared is the session-independent read core over one graph: the
// frozen keyword search index (term dictionary + CSR postings +
// precomputed collection statistics, built once at construction) and the
// semantic-feature cache. Both are safe for concurrent use — retrieval
// scores term-at-a-time into pooled scratch, so one Shared serves every
// session of a process and per-session engines carry only the (cheap,
// mutable) session state. Building and freezing the search index and
// warming feature extents happen once per graph instead of once per
// user.
type Shared struct {
	g        *kg.Graph
	searcher *search.Engine
	features *semfeat.FeatureCache
}

// NewShared builds the shared read core: the search index over the
// graph's entity universe plus an empty feature cache.
func NewShared(g *kg.Graph, opts Options) *Shared {
	opts = opts.withDefaults()
	var searcher *search.Engine
	if opts.SearchParams != nil {
		searcher = search.NewEngineWithParams(g, *opts.SearchParams)
	} else {
		searcher = search.NewEngine(g)
	}
	return &Shared{g: g, searcher: searcher, features: semfeat.NewFeatureCache(g)}
}

// Graph exposes the knowledge graph.
func (sh *Shared) Graph() *kg.Graph { return sh.g }

// Searcher exposes the shared keyword search engine.
func (sh *Shared) Searcher() *search.Engine { return sh.searcher }

// FeatureCache exposes the shared semantic-feature cache.
func (sh *Shared) FeatureCache() *semfeat.FeatureCache { return sh.features }

// Engine is a single-user PivotE instance: per-session query state over
// the shared read core. Methods that mutate the session are not safe for
// concurrent use; the HTTP server serializes them per session and lets
// read-only evaluation run concurrently.
type Engine struct {
	g        *kg.Graph
	shared   *Shared
	searcher *search.Engine
	feats    *semfeat.Engine
	expander *expand.Expander
	sess     *session.Session
	log      []Op // every successfully applied op, in order
	opts     Options
}

// New builds an engine over the graph, constructing a private shared
// core (search index and feature cache). Multi-session servers build one
// Shared with NewShared and attach sessions with NewWithShared instead.
func New(g *kg.Graph, opts Options) *Engine {
	return NewWithShared(NewShared(g, opts), opts)
}

// NewWithShared attaches a fresh session engine to an existing shared
// core. The construction cost is a few small allocations — suitable for
// per-request session creation. The search hyperparameters are fixed by
// the shared core; opts.SearchParams is ignored here.
func NewWithShared(sh *Shared, opts Options) *Engine {
	opts = opts.withDefaults()
	fe := semfeat.NewEngineWithCache(sh.features, opts.Features)
	return &Engine{
		g:        sh.g,
		shared:   sh,
		searcher: sh.searcher,
		feats:    fe,
		expander: expand.New(fe, *opts.Expand),
		sess:     session.New(),
		opts:     opts,
	}
}

// Shared exposes the shared read core this engine runs on.
func (e *Engine) Shared() *Shared { return e.shared }

// Graph exposes the knowledge graph.
func (e *Engine) Graph() *kg.Graph { return e.g }

// Features exposes the semantic-feature engine (for explanations).
func (e *Engine) Features() *semfeat.Engine { return e.feats }

// Searcher exposes the keyword search engine.
func (e *Engine) Searcher() *search.Engine { return e.searcher }

// Session exposes the session (read-mostly; use Engine methods to act).
func (e *Engine) Session() *session.Session { return e.sess }

// Apply is the single mutation entry point of the protocol: it
// validates the op, applies it to the session, evaluates the resulting
// query and returns the full interface state. Errors are typed
// (*Error); a canceled context aborts evaluation mid-loop and leaves the
// session exactly as it was.
func (e *Engine) Apply(ctx context.Context, op Op) (*Result, error) {
	return e.ApplyFields(ctx, op, FieldsAll)
}

// ApplyFields is Apply with an explicit field selection: only the
// requested interface areas are assembled, so e.g. FieldEntities skips
// heat-map construction entirely.
func (e *Engine) ApplyFields(ctx context.Context, op Op, fields Fields) (*Result, error) {
	res, _, err := e.ApplyOps(ctx, []Op{op}, fields)
	return res, err
}

// ApplyOps applies a batch of ops atomically: session mutations happen
// op by op, the query is evaluated once after the last op, and any
// failure (validation or cancellation) rewinds the session and the op
// log to their pre-batch state. On error the returned index identifies
// the offending op (len(ops) when evaluation itself failed). This is
// what makes op-log replay and the /api/v1/ops batch endpoint cheap: a
// k-op batch costs k session updates plus one evaluation, not k.
func (e *Engine) ApplyOps(ctx context.Context, ops []Op, fields Fields) (*Result, int, error) {
	mark := e.sess.Mark()
	logLen := len(e.log)
	rewind := func() {
		e.sess.Rewind(mark)
		e.log = e.log[:logLen]
	}
	for i, op := range ops {
		if err := ctx.Err(); err != nil {
			rewind()
			return nil, i, asTyped(err)
		}
		if err := e.applyOp(op); err != nil {
			rewind()
			return nil, i, err
		}
		e.log = append(e.log, op)
	}
	res, err := e.evaluateCtx(ctx, fields)
	if err != nil {
		rewind()
		return nil, len(ops), err
	}
	return res, len(ops), nil
}

// Ops returns a copy of the op log: every op successfully applied to
// this session, in order. Replaying it through ApplyOps on a fresh
// engine reproduces the session (timeline included) exactly — the op
// log IS the session file.
func (e *Engine) Ops() []Op { return append([]Op(nil), e.log...) }

// applyOp validates one op against the graph/session and applies its
// session mutation. No evaluation happens here.
func (e *Engine) applyOp(op Op) error {
	switch op.Kind {
	case OpKindSubmit:
		e.sess.Submit(op.Keywords)
	case OpKindAddSeed, OpKindRemoveSeed, OpKindLookup, OpKindPivot:
		if !e.g.IsEntity(op.Entity) {
			return Errf(KindNotFound, "op %s: term %d is not an entity", op.Kind, op.Entity)
		}
		name := e.g.Name(op.Entity)
		switch op.Kind {
		case OpKindAddSeed:
			e.sess.AddSeed(op.Entity, name)
		case OpKindRemoveSeed:
			e.sess.RemoveSeed(op.Entity, name)
		case OpKindLookup:
			e.sess.Lookup(op.Entity, name)
		case OpKindPivot:
			domain := "unknown"
			if t := e.g.PrimaryType(op.Entity); t != rdf.NoTerm {
				domain = e.g.Name(t)
			}
			e.sess.Pivot(op.Entity, name, domain)
		}
	case OpKindAddFeature, OpKindRemoveFeature:
		if op.Feature.Pred == rdf.NoTerm || !e.g.IsEntity(op.Feature.Anchor) {
			return Errf(KindInvalid, "op %s: feature has no valid anchor/predicate", op.Kind)
		}
		if op.Kind == OpKindAddFeature {
			e.sess.AddFeature(op.Feature, e.feats.Label(op.Feature))
		} else {
			e.sess.RemoveFeature(op.Feature, e.feats.Label(op.Feature))
		}
	case OpKindRevisit:
		if _, err := e.sess.Revisit(op.Step); err != nil {
			return &Error{Kind: KindInvalid, Msg: err.Error(), Err: err}
		}
	default:
		return Errf(KindInvalid, "unknown op kind %q", op.Kind)
	}
	return nil
}

// Submit starts a new keyword query (Fig. 3-a) and evaluates it. Like
// every method below, it is a convenience wrapper over Apply.
func (e *Engine) Submit(keywords string) *Result { return e.applyLegacy(OpSubmit(keywords)) }

// AddSeed adds an example entity to the query ("find entities similar to
// X") and re-evaluates.
func (e *Engine) AddSeed(ent rdf.TermID) *Result { return e.applyLegacy(OpAddSeed(ent)) }

// RemoveSeed removes an example entity and re-evaluates.
func (e *Engine) RemoveSeed(ent rdf.TermID) *Result { return e.applyLegacy(OpRemoveSeed(ent)) }

// AddFeature pins a semantic-feature condition ("find films starring Tom
// Hanks") and re-evaluates.
func (e *Engine) AddFeature(f semfeat.Feature) *Result { return e.applyLegacy(OpAddFeature(f)) }

// RemoveFeature unpins a condition and re-evaluates.
func (e *Engine) RemoveFeature(f semfeat.Feature) *Result { return e.applyLegacy(OpRemoveFeature(f)) }

// Lookup records a profile view (Fig. 3-d) and returns the profile; the
// query and results are unchanged. A non-entity yields the zero Profile
// (use LookupCtx for the typed error).
func (e *Engine) Lookup(ent rdf.TermID) kg.Profile {
	p, _ := e.LookupCtx(context.Background(), ent)
	return p
}

// LookupCtx records a profile view through the op protocol and returns
// the profile; the query and results are unchanged (FieldNone skips
// evaluation). A failed lookup records nothing and returns KindNotFound.
func (e *Engine) LookupCtx(ctx context.Context, ent rdf.TermID) (kg.Profile, error) {
	if _, err := e.ApplyFields(ctx, OpLookup(ent), FieldNone); err != nil {
		return kg.Profile{}, err
	}
	return e.g.ProfileOf(ent, 25), nil
}

// Pivot switches the search domain to the entity's domain (§3.2): the
// query becomes {entity} and the x-axis fills with entities of its type.
// Double-clicking an entity image (Fig. 3-c) or a feature's anchor name
// (Fig. 3-e) both land here.
func (e *Engine) Pivot(ent rdf.TermID) *Result { return e.applyLegacy(OpPivot(ent)) }

// PivotOnFeature pivots into the anchor entity of a recommended feature.
func (e *Engine) PivotOnFeature(f semfeat.Feature) *Result {
	return e.Pivot(f.Anchor)
}

// Revisit restores a historical query from the timeline (Fig. 3-g) and
// re-evaluates it.
func (e *Engine) Revisit(step int) (*Result, error) {
	return e.Apply(context.Background(), OpRevisit(step))
}

// applyLegacy adapts Apply to the error-free pre-protocol signatures: an
// op rejected by validation leaves the session untouched and the current
// state is returned instead.
func (e *Engine) applyLegacy(op Op) *Result {
	res, err := e.Apply(context.Background(), op)
	if err != nil {
		res, _ = e.evaluateCtx(context.Background(), FieldsAll)
	}
	return res
}

// Evaluate re-runs the current query without recording a new action.
func (e *Engine) Evaluate() *Result {
	res, _ := e.evaluateCtx(context.Background(), FieldsAll)
	return res
}

// EvaluateCtx re-runs the current query with cancellation and field
// selection, without recording a new action.
func (e *Engine) EvaluateCtx(ctx context.Context, fields Fields) (*Result, error) {
	return e.evaluateCtx(ctx, fields)
}

func (e *Engine) evaluateCtx(ctx context.Context, fields Fields) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, asTyped(err)
	}
	q := e.sess.Current()
	res := &Result{Query: q, Description: e.DescribeQuery(q)}
	if fields&FieldTimeline != 0 {
		res.Timeline = e.sess.Timeline()
	}
	if fields&(FieldEntities|FieldFeatures|FieldHeatmap) == 0 {
		return res, nil
	}
	var entities []expand.Ranked
	var feats []semfeat.Score
	var err error
	switch {
	case len(q.Seeds) > 0 || len(q.Features) > 0:
		entities, feats, err = e.structured(ctx, q)
	case q.Keywords != "":
		entities, feats, err = e.keyword(ctx, q.Keywords)
	}
	if err != nil {
		return nil, asTyped(err)
	}
	if fields&FieldEntities != 0 {
		res.Entities = entities
	}
	if fields&FieldFeatures != 0 {
		res.Features = feats
	}
	if fields&FieldHeatmap != 0 {
		if err := ctx.Err(); err != nil {
			return nil, asTyped(err)
		}
		res.Heat = heatmap.Build(e.feats, entities, feats)
	}
	return res, nil
}

// keyword answers a plain keyword query: entities from the search engine,
// features recommended from the top hits as pseudo-seeds.
func (e *Engine) keyword(ctx context.Context, kw string) ([]expand.Ranked, []semfeat.Score, error) {
	hits, err := e.searcher.SearchCtx(ctx, kw, e.opts.TopEntities, e.opts.SearchModel)
	if err != nil {
		return nil, nil, err
	}
	entities := make([]expand.Ranked, len(hits))
	var pseudo []rdf.TermID
	for i, h := range hits {
		entities[i] = expand.Ranked{Entity: h.Entity, Name: h.Name, Score: h.Score}
		if i < e.opts.PseudoSeeds {
			pseudo = append(pseudo, h.Entity)
		}
	}
	var feats []semfeat.Score
	if len(pseudo) > 0 {
		// Each pseudo-seed contributes its own features; rank per seed so
		// one odd hit cannot zero out the commonality product.
		seen := map[semfeat.Feature]bool{}
		for _, p := range pseudo {
			ranked, err := e.feats.RankCtx(ctx, []rdf.TermID{p}, e.opts.TopFeatures)
			if err != nil {
				return nil, nil, err
			}
			for _, fs := range ranked {
				if !seen[fs.Feature] {
					seen[fs.Feature] = true
					feats = append(feats, fs)
				}
			}
		}
		feats = topFeatures(feats, e.opts.TopFeatures)
	}
	return entities, feats, nil
}

// structured answers a query with example entities and/or pinned feature
// conditions: Φ(Q) = pinned conditions ∪ top seed features; candidates
// come from the conditions' extents when conditions exist (they are
// mandatory), otherwise from expansion.
func (e *Engine) structured(ctx context.Context, q session.Query) ([]expand.Ranked, []semfeat.Score, error) {
	var phi []semfeat.Score
	pinned := map[semfeat.Feature]bool{}
	for _, f := range q.Features {
		r := e.feats.Relevance(f, q.Seeds) // seeds empty → c=1 → r=d(π)
		phi = append(phi, semfeat.Score{
			Feature:    f,
			Label:      e.feats.Label(f),
			R:          r,
			ExtentSize: e.feats.ExtentSize(f),
		})
		pinned[f] = true
	}
	if len(q.Seeds) > 0 {
		ranked, err := e.feats.RankCtx(ctx, q.Seeds, e.opts.TopFeatures)
		if err != nil {
			return nil, nil, err
		}
		for _, fs := range ranked {
			if !pinned[fs.Feature] {
				phi = append(phi, fs)
			}
		}
	}
	if len(phi) > e.opts.TopFeatures {
		phi = phi[:e.opts.TopFeatures]
	}

	var entities []expand.Ranked
	var err error
	if len(q.Features) > 0 {
		entities, err = e.expander.ScoreCandidatesCtx(ctx, e.conditionCandidates(q), phi, e.opts.TopEntities)
	} else {
		// Seeds only: candidate generation and scoring share one scatter.
		entities, err = e.expander.ExpandWithFeaturesCtx(ctx, q.Seeds, phi, e.opts.TopEntities)
	}
	if err != nil {
		return nil, nil, err
	}
	if len(entities) == 0 && len(q.Seeds) > 0 && len(q.Features) == 0 {
		// The SF extents found no same-type candidates — typical when
		// pivoting into a domain whose entities connect only via longer
		// paths (two directors share no neighbour, but do share
		// film→actor→film chains). Fall back to a random walk with
		// restart so a pivot never dead-ends.
		entities, err = e.expander.ExpandWithCtx(ctx, expand.MethodPPR, q.Seeds, e.opts.TopEntities)
		if err != nil {
			return nil, nil, err
		}
	}
	return entities, phi, nil
}

// conditionCandidates intersects the extents of all pinned features and
// removes the seeds.
func (e *Engine) conditionCandidates(q session.Query) []rdf.TermID {
	var inter []rdf.TermID
	for i, f := range q.Features {
		ext := e.feats.Extent(f)
		if i == 0 {
			inter = append([]rdf.TermID(nil), ext...)
			continue
		}
		inter = rdf.IntersectSortedInto(inter[:0], inter, ext)
	}
	out := inter[:0]
	for _, c := range inter {
		isSeed := false
		for _, s := range q.Seeds {
			if c == s {
				isSeed = true
				break
			}
		}
		if !isSeed {
			out = append(out, c)
		}
	}
	return out
}

// DescribeQuery renders the query-condition area (Fig. 3-b).
func (e *Engine) DescribeQuery(q session.Query) string {
	desc := ""
	if q.Keywords != "" {
		desc += fmt.Sprintf("keywords=%q", q.Keywords)
	}
	if len(q.Seeds) > 0 {
		if desc != "" {
			desc += " "
		}
		desc += "entities=["
		for i, s := range q.Seeds {
			if i > 0 {
				desc += ", "
			}
			desc += e.g.Name(s)
		}
		desc += "]"
	}
	if len(q.Features) > 0 {
		if desc != "" {
			desc += " "
		}
		desc += "features=["
		for i, f := range q.Features {
			if i > 0 {
				desc += ", "
			}
			desc += e.feats.Label(f)
		}
		desc += "]"
	}
	if desc == "" {
		desc = "(empty query)"
	}
	return desc
}

// topFeatures selects the k best of the per-pseudo-seed feature pools
// under the global order (descending relevance, ties by extent size then
// label) via the shared bounded-heap helper — O(n log k) instead of the
// insertion sort it replaced.
func topFeatures(feats []semfeat.Score, k int) []semfeat.Score {
	return topk.Select(feats, k, func(a, b semfeat.Score) bool {
		if a.R != b.R {
			return a.R > b.R
		}
		if a.ExtentSize != b.ExtentSize {
			return a.ExtentSize < b.ExtentSize
		}
		return a.Label < b.Label
	})
}
