// Package core is the PivotE engine: it wires the search engine (§2.2),
// the recommendation engine (§2.3) and the session state into the
// interaction loop of the paper's interface (Fig. 2 architecture, Fig. 3
// workspace). Every user operation — submitting keywords, adding/removing
// example entities and semantic-feature conditions, looking up profiles,
// pivoting across domains, revisiting the timeline — returns the full
// interface state: ranked entities (x-axis), ranked semantic features
// (y-axis), the seven-level correlation heat map, and the timeline.
package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"pivote/internal/expand"
	"pivote/internal/heatmap"
	"pivote/internal/kg"
	"pivote/internal/live"
	"pivote/internal/obs"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/semfeat"
	"pivote/internal/session"
	"pivote/internal/topk"
)

// Options configure an Engine; zero values select the documented
// defaults.
type Options struct {
	// TopEntities is the x-axis size (default 20).
	TopEntities int
	// TopFeatures is the y-axis size (default 15).
	TopFeatures int
	// PseudoSeeds is how many top keyword hits seed the feature
	// recommendation after a plain keyword query (default 3).
	PseudoSeeds int
	// SearchModel is the retrieval model for keyword queries (default
	// the paper's MLM).
	SearchModel search.Model
	// SearchParams override the retrieval hyperparameters when non-nil.
	SearchParams *search.Params
	// Expand configures the recommendation engine. SameTypeOnly defaults
	// to true (investigation keeps one domain on the x-axis).
	Expand *expand.Options
	// Features configures the semantic-feature model (ablations).
	Features semfeat.Options
	// Partition, when non-nil, makes this core a shard node: every
	// result page emits only the entities it accepts, while scoring
	// still runs against the full graph so the surviving scores are
	// bit-identical to an unpartitioned core's. The scatter-gather
	// router merges such pages back into the single-process result.
	Partition func(rdf.TermID) bool
	// SnapshotWrite overrides how compaction swaps are persisted when a
	// snapshot directory is configured — shard nodes write per-shard
	// snapshot files through it. Nil selects the plain generation file.
	SnapshotWrite func(gen *live.Generation, dir string) (string, error)
}

func (o Options) withDefaults() Options {
	if o.TopEntities <= 0 {
		o.TopEntities = 20
	}
	if o.TopFeatures <= 0 {
		o.TopFeatures = 15
	}
	if o.PseudoSeeds <= 0 {
		o.PseudoSeeds = 3
	}
	if o.Expand == nil {
		o.Expand = &expand.Options{SameTypeOnly: true}
	}
	return o
}

// Result is the assembled interface state after an operation — the five
// areas of Fig. 3.
type Result struct {
	// Query is the live query (area b) and Description its rendering.
	Query       session.Query
	Description string
	// Entities is the recommendation area (c): the x-axis.
	Entities []expand.Ranked
	// Features is the semantic-feature area (e): the y-axis.
	Features []semfeat.Score
	// Heat is the explanation area (f).
	Heat *heatmap.Matrix
	// Timeline is the query history (g).
	Timeline []session.Action
	// Fallback reports that the entity page came from the PPR fallback
	// because the SF extents produced no candidates. The scatter-gather
	// router needs this to merge correctly: a shard whose partition page
	// is empty falls back locally even when another shard's SF page is
	// not, and its fallback page must then be discarded — the global
	// engine would not have fallen back.
	Fallback bool

	// GenID is the generation this result was evaluated on. The
	// scatter-gather router compares it across shards: pages merged from
	// different generations would not equal ANY single-process output, so
	// a mixed fan-out (one shard answered just before a compaction swap,
	// another just after) must be re-read, not merged.
	GenID uint64

	// g is the generation's graph this result was computed on, so
	// rendering (names, types) agrees with the ranking even if a
	// compaction swap lands before the transport serializes it.
	g *kg.Graph
}

// Graph returns the graph the result was evaluated against — the
// engine's pinned generation at evaluation time.
func (r *Result) Graph() *kg.Graph { return r.g }

// Shared is the session-independent read core over one graph,
// generation-aware since the live-ingest subsystem: it is backed by a
// live.Store whose current generation bundles the frozen keyword search
// index, the KG tables and the semantic-feature cache. In the static
// configuration (NewShared) there is exactly one generation and nothing
// else ever runs; in the live configuration (NewLiveShared) ingest
// batches accumulate in the store's delta log and a background compactor
// publishes fresh generations with an RCU swap. Every accessor reads the
// current generation; engines pin one generation per operation so a
// request never observes a half-switched graph.
type Shared struct {
	ls     *live.Store
	ingest bool
}

// NewShared builds the shared read core: the search index over the
// graph's entity universe plus an empty feature cache, wrapped as the
// sole generation of a (write-disabled) live store. No goroutines are
// spawned.
func NewShared(g *kg.Graph, opts Options) *Shared {
	opts = opts.withDefaults()
	return &Shared{
		ls: live.NewStore(g, live.Config{
			SearchParams: opts.SearchParams,
			Partition:    opts.Partition,
		}),
	}
}

// NewLiveShared is NewShared with the write path enabled: ingest batches
// are accepted and a background compactor folds them into fresh
// generations. Call Close on shutdown to stop the compactor.
func NewLiveShared(g *kg.Graph, opts Options) *Shared {
	sh := NewShared(g, opts)
	sh.ingest = true
	sh.ls.StartCompactor()
	return sh
}

// NewSharedFromGeneration builds the shared read core directly from a
// snapshot-opened generation — no index build, no catalog build; the
// generation serves as-is off its mapping.
func NewSharedFromGeneration(gen *live.Generation, opts Options) *Shared {
	opts = opts.withDefaults()
	return &Shared{
		ls: live.NewStoreFromGeneration(gen, live.Config{
			SearchParams: opts.SearchParams,
			Partition:    opts.Partition,
		}),
	}
}

// NewLiveSharedFromGeneration is NewSharedFromGeneration with the write
// path enabled. snapshotDir, when non-empty, makes every compaction
// swap persist the new generation there (the restore loop: boot from
// the newest snapshot, keep publishing newer ones).
func NewLiveSharedFromGeneration(gen *live.Generation, opts Options, snapshotDir string) *Shared {
	opts = opts.withDefaults()
	sh := &Shared{
		ls: live.NewStoreFromGeneration(gen, live.Config{
			SearchParams:  opts.SearchParams,
			SnapshotDir:   snapshotDir,
			SnapshotWrite: opts.SnapshotWrite,
			Partition:     opts.Partition,
		}),
		ingest: true,
	}
	sh.ls.StartCompactor()
	return sh
}

// NewLiveSharedWithSnapshots is NewLiveShared with compaction snapshots
// published to snapshotDir.
func NewLiveSharedWithSnapshots(g *kg.Graph, opts Options, snapshotDir string) *Shared {
	opts = opts.withDefaults()
	sh := &Shared{
		ls: live.NewStore(g, live.Config{
			SearchParams:  opts.SearchParams,
			SnapshotDir:   snapshotDir,
			SnapshotWrite: opts.SnapshotWrite,
			Partition:     opts.Partition,
		}),
		ingest: true,
	}
	sh.ls.StartCompactor()
	return sh
}

// Live exposes the generational store backing this core.
func (sh *Shared) Live() *live.Store { return sh.ls }

// IngestEnabled reports whether this core accepts live ingest.
func (sh *Shared) IngestEnabled() bool { return sh.ingest }

// Close stops the background compactor (if any) and rejects further
// ingest. Reads remain valid forever.
func (sh *Shared) Close() error { return sh.ls.Close() }

// AdoptSnapshot opens generation snapshot bytes and publishes them as
// the current generation — the replication swap-coordination hook: a
// replica receives the snapshot its shard's compacting peer published
// and adopts it through the same RCU swap a local compaction uses.
// force replaces even a same-ID generation (the divergence repair
// path). Reports the adopted generation and whether a swap happened;
// sessions pick the new generation up on their next operation exactly
// as they do across a local compaction swap.
func (sh *Shared) AdoptSnapshot(data []byte, force bool) (*live.Generation, bool, error) {
	gen, err := live.OpenGenerationBytes(data)
	if err != nil {
		return nil, false, err
	}
	adopted, err := sh.ls.AdoptGeneration(gen, force)
	if err != nil {
		return nil, false, err
	}
	return gen, adopted, nil
}

// Generation returns the current generation.
func (sh *Shared) Generation() *live.Generation { return sh.ls.Generation() }

// Graph exposes the current generation's knowledge graph.
func (sh *Shared) Graph() *kg.Graph { return sh.Generation().Graph }

// Searcher exposes the current generation's keyword search engine.
func (sh *Shared) Searcher() *search.Engine { return sh.Generation().Searcher }

// FeatureCache exposes the current generation's semantic-feature cache.
func (sh *Shared) FeatureCache() *semfeat.FeatureCache { return sh.Generation().Features }

// Catalog exposes the current generation's frozen feature catalog — the
// dense FeatureID space semantic-feature ranking scatters over.
func (sh *Shared) Catalog() *semfeat.Catalog { return sh.Generation().Catalog }

// Engine is a single-user PivotE instance: per-session query state over
// the shared read core. Methods that mutate the session are not safe for
// concurrent use; the HTTP server serializes them per session and lets
// read-only evaluation run concurrently.
//
// Every operation pins the generation that is current when it starts and
// uses it end to end — validation, ranking and rendering all see one
// immutable graph even if the compactor swaps mid-request. The pin is a
// local value, never stored on the engine, so an in-flight operation
// retains no old generation beyond its own duration. Building a pin is
// three small allocations — the per-generation wrappers (feature engine,
// expander) are plain structs over the generation's shared cache.
//
// The one deliberate exception is the evaluation cache: the last
// successful evaluation is memoized (keyed on the generation it ran
// against, the session mutation version and the field selection), so the
// dominant serving pattern — repeated GET /state reads of an unchanged
// session — re-serves the memoized result instead of re-running search,
// feature ranking and heat-map construction. The cached entry keeps its
// generation reachable until the next evaluation or the session's
// eviction, which bounds RCU generation reclaim by the live-session cap
// rather than by in-flight operations alone.
type Engine struct {
	shared *Shared
	sess   *session.Session
	log    []Op // every successfully applied op, in order
	opts   Options

	// ver counts successful session mutations (ApplyOps batches,
	// including replays, which route through ApplyOps). Mutations are
	// serialized by the caller (the HTTP server holds the session lock),
	// so a plain field suffices; concurrent readers observe it under the
	// same read lock.
	ver uint64
	// cache holds the memoized last evaluation. Atomic because reads
	// (and their store-on-miss) run concurrently under the server's read
	// lock.
	cache atomic.Pointer[evalEntry]
}

// evalEntry is one memoized evaluation. An entry is valid while the
// engine still serves the same generation, the session has not mutated
// and the field selection matches exactly (field subsets must not be
// served from a superset result: unrequested areas must stay absent
// from the response bytes).
type evalEntry struct {
	gen    *live.Generation
	ver    uint64
	fields Fields
	res    *Result
}

// pin is one generation plus the session-options wrappers over it.
type pin struct {
	gen      *live.Generation
	g        *kg.Graph
	searcher *search.Engine
	feats    *semfeat.Engine
	expander *expand.Expander
}

// pinGen captures the current generation for one operation. Safe for
// concurrent use; callers hold the returned pin for the duration of the
// operation and then drop it.
func (e *Engine) pinGen() *pin {
	gen := e.shared.Generation()
	fe := semfeat.NewEngineWithCache(gen.Features, e.opts.Features)
	xo := *e.opts.Expand
	if gen.Own != nil {
		// Shard node: every expansion method emits only the partition.
		xo.Owned = gen.Own
	}
	return &pin{
		gen:      gen,
		g:        gen.Graph,
		searcher: gen.Searcher,
		feats:    fe,
		expander: expand.New(fe, xo),
	}
}

// New builds an engine over the graph, constructing a private shared
// core (search index and feature cache). Multi-session servers build one
// Shared with NewShared and attach sessions with NewWithShared instead.
func New(g *kg.Graph, opts Options) *Engine {
	return NewWithShared(NewShared(g, opts), opts)
}

// NewWithShared attaches a fresh session engine to an existing shared
// core. The construction cost is a few small allocations — suitable for
// per-request session creation. The search hyperparameters are fixed by
// the shared core; opts.SearchParams is ignored here.
func NewWithShared(sh *Shared, opts Options) *Engine {
	opts = opts.withDefaults()
	return &Engine{
		shared: sh,
		sess:   session.New(),
		opts:   opts,
	}
}

// Shared exposes the shared read core this engine runs on.
func (e *Engine) Shared() *Shared { return e.shared }

// Graph exposes the knowledge graph (of the current generation).
func (e *Engine) Graph() *kg.Graph { return e.pinGen().g }

// Features exposes the semantic-feature engine (for explanations).
func (e *Engine) Features() *semfeat.Engine { return e.pinGen().feats }

// Searcher exposes the keyword search engine.
func (e *Engine) Searcher() *search.Engine { return e.pinGen().searcher }

// Session exposes the session (read-mostly; use Engine methods to act).
func (e *Engine) Session() *session.Session { return e.sess }

// Apply is the single mutation entry point of the protocol: it
// validates the op, applies it to the session, evaluates the resulting
// query and returns the full interface state. Errors are typed
// (*Error); a canceled context aborts evaluation mid-loop and leaves the
// session exactly as it was.
func (e *Engine) Apply(ctx context.Context, op Op) (*Result, error) {
	return e.ApplyFields(ctx, op, FieldsAll)
}

// ApplyFields is Apply with an explicit field selection: only the
// requested interface areas are assembled, so e.g. FieldEntities skips
// heat-map construction entirely.
func (e *Engine) ApplyFields(ctx context.Context, op Op, fields Fields) (*Result, error) {
	res, _, err := e.ApplyOps(ctx, []Op{op}, fields)
	return res, err
}

// ApplyOps applies a batch of ops atomically: session mutations happen
// op by op, the query is evaluated once after the last op, and any
// failure (validation or cancellation) rewinds the session and the op
// log to their pre-batch state. On error the returned index identifies
// the offending op (len(ops) when evaluation itself failed). This is
// what makes op-log replay and the /api/v1/ops batch endpoint cheap: a
// k-op batch costs k session updates plus one evaluation, not k.
func (e *Engine) ApplyOps(ctx context.Context, ops []Op, fields Fields) (*Result, int, error) {
	// One pin for the whole batch: validation and evaluation see the same
	// generation even if a compaction swap lands mid-batch.
	p := e.pinGen()
	t0 := stageStart()
	mark := e.sess.Mark()
	logLen := len(e.log)
	rewind := func() {
		e.sess.Rewind(mark)
		e.log = e.log[:logLen]
	}
	for i, op := range ops {
		if err := ctx.Err(); err != nil {
			rewind()
			opErrorsTotal.Inc()
			return nil, i, asTyped(err)
		}
		if err := e.applyOp(p, op); err != nil {
			rewind()
			opErrorsTotal.Inc()
			return nil, i, err
		}
		e.log = append(e.log, op)
		if c := opsTotal[op.Kind]; c != nil {
			c.Inc()
		}
	}
	res, err := e.evaluate(ctx, p, fields)
	if err != nil {
		rewind()
		opErrorsTotal.Inc()
		return nil, len(ops), err
	}
	// The batch evaluated the post-mutation session already — seed the
	// cache so the common "apply, then re-read state" pattern hits.
	e.ver++
	e.cache.Store(&evalEntry{gen: p.gen, ver: e.ver, fields: fields, res: res})
	if !t0.IsZero() {
		d := time.Since(t0)
		if len(ops) == 1 {
			if h := opSeconds[ops[0].Kind]; h != nil {
				h.Observe(d)
			}
		} else {
			opBatchSeconds.Observe(d)
		}
	}
	return res, len(ops), nil
}

// Ops returns a copy of the op log: every op successfully applied to
// this session, in order. Replaying it through ApplyOps on a fresh
// engine reproduces the session (timeline included) exactly — the op
// log IS the session file.
func (e *Engine) Ops() []Op { return append([]Op(nil), e.log...) }

// applyOp validates one op against the pinned graph/session and applies
// its session mutation. No evaluation happens here.
func (e *Engine) applyOp(p *pin, op Op) error {
	switch op.Kind {
	case OpKindSubmit:
		e.sess.Submit(op.Keywords)
	case OpKindAddSeed, OpKindRemoveSeed, OpKindLookup, OpKindPivot:
		if !p.g.IsEntity(op.Entity) {
			return Errf(KindNotFound, "op %s: term %d is not an entity", op.Kind, op.Entity)
		}
		name := p.g.Name(op.Entity)
		switch op.Kind {
		case OpKindAddSeed:
			e.sess.AddSeed(op.Entity, name)
		case OpKindRemoveSeed:
			e.sess.RemoveSeed(op.Entity, name)
		case OpKindLookup:
			e.sess.Lookup(op.Entity, name)
		case OpKindPivot:
			domain := "unknown"
			if t := p.g.PrimaryType(op.Entity); t != rdf.NoTerm {
				domain = p.g.Name(t)
			}
			e.sess.Pivot(op.Entity, name, domain)
		}
	case OpKindAddFeature, OpKindRemoveFeature:
		if op.Feature.Pred == rdf.NoTerm || !p.g.IsEntity(op.Feature.Anchor) {
			return Errf(KindInvalid, "op %s: feature has no valid anchor/predicate", op.Kind)
		}
		if op.Kind == OpKindAddFeature {
			e.sess.AddFeature(op.Feature, p.feats.Label(op.Feature))
		} else {
			e.sess.RemoveFeature(op.Feature, p.feats.Label(op.Feature))
		}
	case OpKindRevisit:
		if _, err := e.sess.Revisit(op.Step); err != nil {
			return &Error{Kind: KindInvalid, Msg: err.Error(), Err: err}
		}
	default:
		return Errf(KindInvalid, "unknown op kind %q", op.Kind)
	}
	return nil
}

// Submit starts a new keyword query (Fig. 3-a) and evaluates it. Like
// every method below, it is a convenience wrapper over Apply.
func (e *Engine) Submit(keywords string) *Result { return e.applyLegacy(OpSubmit(keywords)) }

// AddSeed adds an example entity to the query ("find entities similar to
// X") and re-evaluates.
func (e *Engine) AddSeed(ent rdf.TermID) *Result { return e.applyLegacy(OpAddSeed(ent)) }

// RemoveSeed removes an example entity and re-evaluates.
func (e *Engine) RemoveSeed(ent rdf.TermID) *Result { return e.applyLegacy(OpRemoveSeed(ent)) }

// AddFeature pins a semantic-feature condition ("find films starring Tom
// Hanks") and re-evaluates.
func (e *Engine) AddFeature(f semfeat.Feature) *Result { return e.applyLegacy(OpAddFeature(f)) }

// RemoveFeature unpins a condition and re-evaluates.
func (e *Engine) RemoveFeature(f semfeat.Feature) *Result { return e.applyLegacy(OpRemoveFeature(f)) }

// Lookup records a profile view (Fig. 3-d) and returns the profile; the
// query and results are unchanged. A non-entity yields the zero Profile
// (use LookupCtx for the typed error).
func (e *Engine) Lookup(ent rdf.TermID) kg.Profile {
	p, _ := e.LookupCtx(context.Background(), ent)
	return p
}

// LookupCtx records a profile view through the op protocol and returns
// the profile; the query and results are unchanged (FieldNone skips
// evaluation). A failed lookup records nothing and returns KindNotFound.
func (e *Engine) LookupCtx(ctx context.Context, ent rdf.TermID) (kg.Profile, error) {
	if _, err := e.ApplyFields(ctx, OpLookup(ent), FieldNone); err != nil {
		return kg.Profile{}, err
	}
	return e.pinGen().g.ProfileOf(ent, 25), nil
}

// Pivot switches the search domain to the entity's domain (§3.2): the
// query becomes {entity} and the x-axis fills with entities of its type.
// Double-clicking an entity image (Fig. 3-c) or a feature's anchor name
// (Fig. 3-e) both land here.
func (e *Engine) Pivot(ent rdf.TermID) *Result { return e.applyLegacy(OpPivot(ent)) }

// PivotOnFeature pivots into the anchor entity of a recommended feature.
func (e *Engine) PivotOnFeature(f semfeat.Feature) *Result {
	return e.Pivot(f.Anchor)
}

// Revisit restores a historical query from the timeline (Fig. 3-g) and
// re-evaluates it.
func (e *Engine) Revisit(step int) (*Result, error) {
	return e.Apply(context.Background(), OpRevisit(step))
}

// applyLegacy adapts Apply to the error-free pre-protocol signatures: an
// op rejected by validation leaves the session untouched and the current
// state is returned instead.
func (e *Engine) applyLegacy(op Op) *Result {
	res, err := e.Apply(context.Background(), op)
	if err != nil {
		res, _ = e.evaluate(context.Background(), e.pinGen(), FieldsAll)
	}
	return res
}

// Evaluate re-runs the current query without recording a new action.
func (e *Engine) Evaluate() *Result {
	res, _ := e.EvaluateCtx(context.Background(), FieldsAll)
	return res
}

// EvaluateCtx re-runs the current query with cancellation and field
// selection, without recording a new action. The generation current at
// entry serves the whole evaluation. Re-reads of an unchanged session on
// an unchanged generation are served from the evaluation cache — the
// memoized Result is immutable by convention (every consumer renders
// from it without writing), so one value serves concurrent readers.
func (e *Engine) EvaluateCtx(ctx context.Context, fields Fields) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, asTyped(err)
	}
	if ent := e.cache.Load(); ent != nil &&
		ent.ver == e.ver && ent.fields == fields && ent.gen == e.shared.Generation() {
		evalCacheHits.Inc()
		return ent.res, nil
	}
	evalCacheMisses.Inc()
	p := e.pinGen()
	res, err := e.evaluate(ctx, p, fields)
	if err != nil {
		return nil, err
	}
	e.cache.Store(&evalEntry{gen: p.gen, ver: e.ver, fields: fields, res: res})
	return res, nil
}

func (e *Engine) evaluate(ctx context.Context, p *pin, fields Fields) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, asTyped(err)
	}
	q := e.sess.Current()
	res := &Result{Query: q, Description: describeQuery(p, q), g: p.g, GenID: p.gen.ID}
	if fields&FieldTimeline != 0 {
		res.Timeline = e.sess.Timeline()
	}
	if fields&(FieldEntities|FieldFeatures|FieldHeatmap) == 0 {
		return res, nil
	}
	var entities []expand.Ranked
	var feats []semfeat.Score
	var err error
	rec := obs.RecorderOf(ctx)
	switch {
	case len(q.Seeds) > 0 || len(q.Features) > 0:
		entities, feats, res.Fallback, err = e.structured(ctx, rec, p, q)
	case q.Keywords != "":
		entities, feats, err = e.keyword(ctx, rec, p, q.Keywords)
	}
	if err != nil {
		return nil, asTyped(err)
	}
	if fields&FieldEntities != 0 {
		res.Entities = entities
	}
	if fields&FieldFeatures != 0 {
		res.Features = feats
	}
	if fields&FieldHeatmap != 0 {
		if err := ctx.Err(); err != nil {
			return nil, asTyped(err)
		}
		t0 := stageStart()
		res.Heat = heatmap.Build(p.feats, entities, feats)
		stageEnd(rec, obs.StageHeatmap, t0)
	}
	return res, nil
}

// keyword answers a plain keyword query: entities from the search engine,
// features recommended from the top hits as pseudo-seeds.
func (e *Engine) keyword(ctx context.Context, rec *obs.Recorder, p *pin, kw string) ([]expand.Ranked, []semfeat.Score, error) {
	t0 := stageStart()
	hits, err := p.searcher.SearchCtx(ctx, kw, e.opts.TopEntities, e.opts.SearchModel)
	stageEnd(rec, obs.StageSearch, t0)
	if err != nil {
		return nil, nil, err
	}
	entities := make([]expand.Ranked, len(hits))
	var pseudo []rdf.TermID
	for i, h := range hits {
		entities[i] = expand.Ranked{Entity: h.Entity, Name: h.Name, Score: h.Score}
		if i < e.opts.PseudoSeeds {
			pseudo = append(pseudo, h.Entity)
		}
	}
	if p.gen.Own != nil {
		// Shard node: the page above is partition-filtered, but the
		// pseudo-seeds must be the GLOBAL top hits — the single-process
		// engine derives features from the best hits of the whole graph,
		// and every shard must derive the identical feature list for the
		// router's y-axis merge to be byte-identical. A second bounded
		// search through the unfiltered twin engine recovers them. The
		// bound is min(PseudoSeeds, TopEntities): the single-process
		// engine takes its pseudo-seeds from the top-k page, so a page
		// smaller than PseudoSeeds caps the seed count.
		limit := e.opts.PseudoSeeds
		if limit > e.opts.TopEntities {
			limit = e.opts.TopEntities
		}
		t0 := stageStart()
		global, err := p.searcher.WithOwner(nil).SearchCtx(ctx, kw, limit, e.opts.SearchModel)
		stageEnd(rec, obs.StageSearch, t0)
		if err != nil {
			return nil, nil, err
		}
		pseudo = pseudo[:0]
		for _, h := range global {
			pseudo = append(pseudo, h.Entity)
		}
	}
	var feats []semfeat.Score
	if len(pseudo) > 0 {
		// Each pseudo-seed contributes its own features; rank per seed so
		// one odd hit cannot zero out the commonality product.
		t0 := stageStart()
		seen := map[semfeat.Feature]bool{}
		for _, ps := range pseudo {
			ranked, err := p.feats.RankCtx(ctx, []rdf.TermID{ps}, e.opts.TopFeatures)
			if err != nil {
				return nil, nil, err
			}
			for _, fs := range ranked {
				if !seen[fs.Feature] {
					seen[fs.Feature] = true
					feats = append(feats, fs)
				}
			}
		}
		feats = topFeatures(feats, e.opts.TopFeatures)
		stageEnd(rec, obs.StageRank, t0)
	}
	return entities, feats, nil
}

// structured answers a query with example entities and/or pinned feature
// conditions: Φ(Q) = pinned conditions ∪ top seed features; candidates
// come from the conditions' extents when conditions exist (they are
// mandatory), otherwise from expansion.
func (e *Engine) structured(ctx context.Context, rec *obs.Recorder, p *pin, q session.Query) ([]expand.Ranked, []semfeat.Score, bool, error) {
	var phi []semfeat.Score
	pinned := map[semfeat.Feature]bool{}
	for _, f := range q.Features {
		r := p.feats.Relevance(f, q.Seeds) // seeds empty → c=1 → r=d(π)
		phi = append(phi, semfeat.Score{
			Feature:    f,
			Label:      p.feats.Label(f),
			R:          r,
			ExtentSize: p.feats.ExtentSize(f),
		})
		pinned[f] = true
	}
	if len(q.Seeds) > 0 {
		t0 := stageStart()
		ranked, err := p.feats.RankCtx(ctx, q.Seeds, e.opts.TopFeatures)
		stageEnd(rec, obs.StageRank, t0)
		if err != nil {
			return nil, nil, false, err
		}
		for _, fs := range ranked {
			if !pinned[fs.Feature] {
				phi = append(phi, fs)
			}
		}
	}
	if len(phi) > e.opts.TopFeatures {
		phi = phi[:e.opts.TopFeatures]
	}

	var entities []expand.Ranked
	var err error
	t0 := stageStart()
	if len(q.Features) > 0 {
		entities, err = p.expander.ScoreCandidatesCtx(ctx, e.conditionCandidates(p, q), phi, e.opts.TopEntities)
	} else {
		// Seeds only: candidate generation and scoring share one scatter.
		entities, err = p.expander.ExpandWithFeaturesCtx(ctx, q.Seeds, phi, e.opts.TopEntities)
	}
	stageEnd(rec, obs.StageExpand, t0)
	if err != nil {
		return nil, nil, false, err
	}
	fellBack := false
	if len(entities) == 0 && len(q.Seeds) > 0 && len(q.Features) == 0 {
		// The SF extents found no same-type candidates — typical when
		// pivoting into a domain whose entities connect only via longer
		// paths (two directors share no neighbour, but do share
		// film→actor→film chains). Fall back to a random walk with
		// restart so a pivot never dead-ends.
		fellBack = true
		t0 = stageStart()
		entities, err = p.expander.ExpandWithCtx(ctx, expand.MethodPPR, q.Seeds, e.opts.TopEntities)
		stageEnd(rec, obs.StageExpand, t0)
		if err != nil {
			return nil, nil, false, err
		}
	}
	return entities, phi, fellBack, nil
}

// conditionCandidates intersects the extents of all pinned features and
// removes the seeds.
func (e *Engine) conditionCandidates(p *pin, q session.Query) []rdf.TermID {
	var inter []rdf.TermID
	for i, f := range q.Features {
		ext := p.feats.Extent(f)
		if i == 0 {
			inter = append([]rdf.TermID(nil), ext...)
			continue
		}
		inter = rdf.IntersectSortedInto(inter[:0], inter, ext)
	}
	out := inter[:0]
	for _, c := range inter {
		isSeed := false
		for _, s := range q.Seeds {
			if c == s {
				isSeed = true
				break
			}
		}
		if !isSeed {
			out = append(out, c)
		}
	}
	return out
}

// DescribeQuery renders the query-condition area (Fig. 3-b).
func (e *Engine) DescribeQuery(q session.Query) string {
	return describeQuery(e.pinGen(), q)
}

func describeQuery(p *pin, q session.Query) string {
	desc := ""
	if q.Keywords != "" {
		desc += fmt.Sprintf("keywords=%q", q.Keywords)
	}
	if len(q.Seeds) > 0 {
		if desc != "" {
			desc += " "
		}
		desc += "entities=["
		for i, s := range q.Seeds {
			if i > 0 {
				desc += ", "
			}
			desc += p.g.Name(s)
		}
		desc += "]"
	}
	if len(q.Features) > 0 {
		if desc != "" {
			desc += " "
		}
		desc += "features=["
		for i, f := range q.Features {
			if i > 0 {
				desc += ", "
			}
			desc += p.feats.Label(f)
		}
		desc += "]"
	}
	if desc == "" {
		desc = "(empty query)"
	}
	return desc
}

// topFeatures selects the k best of the per-pseudo-seed feature pools
// under the global order (descending relevance, ties by extent size then
// label) via the shared bounded-heap helper — O(n log k) instead of the
// insertion sort it replaced.
func topFeatures(feats []semfeat.Score, k int) []semfeat.Score {
	return topk.Select(feats, k, func(a, b semfeat.Score) bool {
		if a.R != b.R {
			return a.R > b.R
		}
		if a.ExtentSize != b.ExtentSize {
			return a.ExtentSize < b.ExtentSize
		}
		return a.Label < b.Label
	})
}
