// Package core is the PivotE engine: it wires the search engine (§2.2),
// the recommendation engine (§2.3) and the session state into the
// interaction loop of the paper's interface (Fig. 2 architecture, Fig. 3
// workspace). Every user operation — submitting keywords, adding/removing
// example entities and semantic-feature conditions, looking up profiles,
// pivoting across domains, revisiting the timeline — returns the full
// interface state: ranked entities (x-axis), ranked semantic features
// (y-axis), the seven-level correlation heat map, and the timeline.
package core

import (
	"fmt"

	"pivote/internal/expand"
	"pivote/internal/heatmap"
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/semfeat"
	"pivote/internal/session"
)

// Options configure an Engine; zero values select the documented
// defaults.
type Options struct {
	// TopEntities is the x-axis size (default 20).
	TopEntities int
	// TopFeatures is the y-axis size (default 15).
	TopFeatures int
	// PseudoSeeds is how many top keyword hits seed the feature
	// recommendation after a plain keyword query (default 3).
	PseudoSeeds int
	// SearchModel is the retrieval model for keyword queries (default
	// the paper's MLM).
	SearchModel search.Model
	// SearchParams override the retrieval hyperparameters when non-nil.
	SearchParams *search.Params
	// Expand configures the recommendation engine. SameTypeOnly defaults
	// to true (investigation keeps one domain on the x-axis).
	Expand *expand.Options
	// Features configures the semantic-feature model (ablations).
	Features semfeat.Options
}

func (o Options) withDefaults() Options {
	if o.TopEntities <= 0 {
		o.TopEntities = 20
	}
	if o.TopFeatures <= 0 {
		o.TopFeatures = 15
	}
	if o.PseudoSeeds <= 0 {
		o.PseudoSeeds = 3
	}
	if o.Expand == nil {
		o.Expand = &expand.Options{SameTypeOnly: true}
	}
	return o
}

// Result is the assembled interface state after an operation — the five
// areas of Fig. 3.
type Result struct {
	// Query is the live query (area b) and Description its rendering.
	Query       session.Query
	Description string
	// Entities is the recommendation area (c): the x-axis.
	Entities []expand.Ranked
	// Features is the semantic-feature area (e): the y-axis.
	Features []semfeat.Score
	// Heat is the explanation area (f).
	Heat *heatmap.Matrix
	// Timeline is the query history (g).
	Timeline []session.Action
}

// Shared is the session-independent read core over one graph: the
// keyword search index and the semantic-feature cache. Both are safe for
// concurrent use, so one Shared serves every session of a process —
// per-session engines carry only the (cheap, mutable) session state.
// Building the search index and warming feature extents happen once per
// graph instead of once per user.
type Shared struct {
	g        *kg.Graph
	searcher *search.Engine
	features *semfeat.FeatureCache
}

// NewShared builds the shared read core: the search index over the
// graph's entity universe plus an empty feature cache.
func NewShared(g *kg.Graph, opts Options) *Shared {
	opts = opts.withDefaults()
	var searcher *search.Engine
	if opts.SearchParams != nil {
		searcher = search.NewEngineWithParams(g, *opts.SearchParams)
	} else {
		searcher = search.NewEngine(g)
	}
	return &Shared{g: g, searcher: searcher, features: semfeat.NewFeatureCache(g)}
}

// Graph exposes the knowledge graph.
func (sh *Shared) Graph() *kg.Graph { return sh.g }

// Searcher exposes the shared keyword search engine.
func (sh *Shared) Searcher() *search.Engine { return sh.searcher }

// FeatureCache exposes the shared semantic-feature cache.
func (sh *Shared) FeatureCache() *semfeat.FeatureCache { return sh.features }

// Engine is a single-user PivotE instance: per-session query state over
// the shared read core. Methods that mutate the session are not safe for
// concurrent use; the HTTP server serializes them per session and lets
// read-only evaluation run concurrently.
type Engine struct {
	g        *kg.Graph
	shared   *Shared
	searcher *search.Engine
	feats    *semfeat.Engine
	expander *expand.Expander
	sess     *session.Session
	opts     Options
}

// New builds an engine over the graph, constructing a private shared
// core (search index and feature cache). Multi-session servers build one
// Shared with NewShared and attach sessions with NewWithShared instead.
func New(g *kg.Graph, opts Options) *Engine {
	return NewWithShared(NewShared(g, opts), opts)
}

// NewWithShared attaches a fresh session engine to an existing shared
// core. The construction cost is a few small allocations — suitable for
// per-request session creation. The search hyperparameters are fixed by
// the shared core; opts.SearchParams is ignored here.
func NewWithShared(sh *Shared, opts Options) *Engine {
	opts = opts.withDefaults()
	fe := semfeat.NewEngineWithCache(sh.features, opts.Features)
	return &Engine{
		g:        sh.g,
		shared:   sh,
		searcher: sh.searcher,
		feats:    fe,
		expander: expand.New(fe, *opts.Expand),
		sess:     session.New(),
		opts:     opts,
	}
}

// Shared exposes the shared read core this engine runs on.
func (e *Engine) Shared() *Shared { return e.shared }

// Graph exposes the knowledge graph.
func (e *Engine) Graph() *kg.Graph { return e.g }

// Features exposes the semantic-feature engine (for explanations).
func (e *Engine) Features() *semfeat.Engine { return e.feats }

// Searcher exposes the keyword search engine.
func (e *Engine) Searcher() *search.Engine { return e.searcher }

// Session exposes the session (read-mostly; use Engine methods to act).
func (e *Engine) Session() *session.Session { return e.sess }

// Submit starts a new keyword query (Fig. 3-a) and evaluates it.
func (e *Engine) Submit(keywords string) *Result {
	e.sess.Submit(keywords)
	return e.evaluate()
}

// AddSeed adds an example entity to the query ("find entities similar to
// X") and re-evaluates.
func (e *Engine) AddSeed(ent rdf.TermID) *Result {
	e.sess.AddSeed(ent, e.g.Name(ent))
	return e.evaluate()
}

// RemoveSeed removes an example entity and re-evaluates.
func (e *Engine) RemoveSeed(ent rdf.TermID) *Result {
	e.sess.RemoveSeed(ent, e.g.Name(ent))
	return e.evaluate()
}

// AddFeature pins a semantic-feature condition ("find films starring Tom
// Hanks") and re-evaluates.
func (e *Engine) AddFeature(f semfeat.Feature) *Result {
	e.sess.AddFeature(f, e.feats.Label(f))
	return e.evaluate()
}

// RemoveFeature unpins a condition and re-evaluates.
func (e *Engine) RemoveFeature(f semfeat.Feature) *Result {
	e.sess.RemoveFeature(f, e.feats.Label(f))
	return e.evaluate()
}

// Lookup records a profile view (Fig. 3-d) and returns the profile; the
// query and results are unchanged.
func (e *Engine) Lookup(ent rdf.TermID) kg.Profile {
	e.sess.Lookup(ent, e.g.Name(ent))
	return e.g.ProfileOf(ent, 25)
}

// Pivot switches the search domain to the entity's domain (§3.2): the
// query becomes {entity} and the x-axis fills with entities of its type.
// Double-clicking an entity image (Fig. 3-c) or a feature's anchor name
// (Fig. 3-e) both land here.
func (e *Engine) Pivot(ent rdf.TermID) *Result {
	domain := "unknown"
	if t := e.g.PrimaryType(ent); t != rdf.NoTerm {
		domain = e.g.Name(t)
	}
	e.sess.Pivot(ent, e.g.Name(ent), domain)
	return e.evaluate()
}

// PivotOnFeature pivots into the anchor entity of a recommended feature.
func (e *Engine) PivotOnFeature(f semfeat.Feature) *Result {
	return e.Pivot(f.Anchor)
}

// Revisit restores a historical query from the timeline (Fig. 3-g) and
// re-evaluates it.
func (e *Engine) Revisit(step int) (*Result, error) {
	if _, err := e.sess.Revisit(step); err != nil {
		return nil, err
	}
	return e.evaluate(), nil
}

// Evaluate re-runs the current query without recording a new action.
func (e *Engine) Evaluate() *Result { return e.evaluate() }

func (e *Engine) evaluate() *Result {
	q := e.sess.Current()
	res := &Result{
		Query:       q,
		Description: e.DescribeQuery(q),
		Timeline:    e.sess.Timeline(),
	}
	switch {
	case len(q.Seeds) > 0 || len(q.Features) > 0:
		res.Entities, res.Features = e.structured(q)
	case q.Keywords != "":
		res.Entities, res.Features = e.keyword(q.Keywords)
	}
	res.Heat = heatmap.Build(e.feats, res.Entities, res.Features)
	return res
}

// keyword answers a plain keyword query: entities from the search engine,
// features recommended from the top hits as pseudo-seeds.
func (e *Engine) keyword(kw string) ([]expand.Ranked, []semfeat.Score) {
	hits := e.searcher.Search(kw, e.opts.TopEntities, e.opts.SearchModel)
	entities := make([]expand.Ranked, len(hits))
	var pseudo []rdf.TermID
	for i, h := range hits {
		entities[i] = expand.Ranked{Entity: h.Entity, Name: h.Name, Score: h.Score}
		if i < e.opts.PseudoSeeds {
			pseudo = append(pseudo, h.Entity)
		}
	}
	var feats []semfeat.Score
	if len(pseudo) > 0 {
		// Each pseudo-seed contributes its own features; rank per seed so
		// one odd hit cannot zero out the commonality product.
		seen := map[semfeat.Feature]bool{}
		for _, p := range pseudo {
			for _, fs := range e.feats.Rank([]rdf.TermID{p}, e.opts.TopFeatures) {
				if !seen[fs.Feature] {
					seen[fs.Feature] = true
					feats = append(feats, fs)
				}
			}
		}
		feats = topFeatures(feats, e.opts.TopFeatures)
	}
	return entities, feats
}

// structured answers a query with example entities and/or pinned feature
// conditions: Φ(Q) = pinned conditions ∪ top seed features; candidates
// come from the conditions' extents when conditions exist (they are
// mandatory), otherwise from expansion.
func (e *Engine) structured(q session.Query) ([]expand.Ranked, []semfeat.Score) {
	var phi []semfeat.Score
	pinned := map[semfeat.Feature]bool{}
	for _, f := range q.Features {
		r := e.feats.Relevance(f, q.Seeds) // seeds empty → c=1 → r=d(π)
		phi = append(phi, semfeat.Score{
			Feature:    f,
			Label:      e.feats.Label(f),
			R:          r,
			ExtentSize: e.feats.ExtentSize(f),
		})
		pinned[f] = true
	}
	if len(q.Seeds) > 0 {
		for _, fs := range e.feats.Rank(q.Seeds, e.opts.TopFeatures) {
			if !pinned[fs.Feature] {
				phi = append(phi, fs)
			}
		}
	}
	if len(phi) > e.opts.TopFeatures {
		phi = phi[:e.opts.TopFeatures]
	}

	var entities []expand.Ranked
	if len(q.Features) > 0 {
		entities = e.expander.ScoreCandidates(e.conditionCandidates(q), phi, e.opts.TopEntities)
	} else {
		// Seeds only: candidate generation and scoring share one scatter.
		entities = e.expander.ExpandWithFeatures(q.Seeds, phi, e.opts.TopEntities)
	}
	if len(entities) == 0 && len(q.Seeds) > 0 && len(q.Features) == 0 {
		// The SF extents found no same-type candidates — typical when
		// pivoting into a domain whose entities connect only via longer
		// paths (two directors share no neighbour, but do share
		// film→actor→film chains). Fall back to a random walk with
		// restart so a pivot never dead-ends.
		entities = e.expander.ExpandWith(expand.MethodPPR, q.Seeds, e.opts.TopEntities)
	}
	return entities, phi
}

// conditionCandidates intersects the extents of all pinned features and
// removes the seeds.
func (e *Engine) conditionCandidates(q session.Query) []rdf.TermID {
	var inter []rdf.TermID
	for i, f := range q.Features {
		ext := e.feats.Extent(f)
		if i == 0 {
			inter = append([]rdf.TermID(nil), ext...)
			continue
		}
		inter = rdf.IntersectSortedInto(inter[:0], inter, ext)
	}
	out := inter[:0]
	for _, c := range inter {
		isSeed := false
		for _, s := range q.Seeds {
			if c == s {
				isSeed = true
				break
			}
		}
		if !isSeed {
			out = append(out, c)
		}
	}
	return out
}

// DescribeQuery renders the query-condition area (Fig. 3-b).
func (e *Engine) DescribeQuery(q session.Query) string {
	desc := ""
	if q.Keywords != "" {
		desc += fmt.Sprintf("keywords=%q", q.Keywords)
	}
	if len(q.Seeds) > 0 {
		if desc != "" {
			desc += " "
		}
		desc += "entities=["
		for i, s := range q.Seeds {
			if i > 0 {
				desc += ", "
			}
			desc += e.g.Name(s)
		}
		desc += "]"
	}
	if len(q.Features) > 0 {
		if desc != "" {
			desc += " "
		}
		desc += "features=["
		for i, f := range q.Features {
			if i > 0 {
				desc += ", "
			}
			desc += e.feats.Label(f)
		}
		desc += "]"
	}
	if desc == "" {
		desc = "(empty query)"
	}
	return desc
}

func topFeatures(feats []semfeat.Score, k int) []semfeat.Score {
	// feats arrive grouped per pseudo-seed; re-sort globally.
	for i := 1; i < len(feats); i++ {
		for j := i; j > 0; j-- {
			a, b := feats[j], feats[j-1]
			if a.R > b.R || (a.R == b.R && (a.ExtentSize < b.ExtentSize ||
				(a.ExtentSize == b.ExtentSize && a.Label < b.Label))) {
				feats[j], feats[j-1] = feats[j-1], feats[j]
				continue
			}
			break
		}
	}
	if len(feats) > k {
		feats = feats[:k]
	}
	return feats
}
