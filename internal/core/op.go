package core

import (
	"strings"

	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

// OpKind names one of the eight operations of PivotE's interaction
// model. The values double as the wire encoding and match the session
// package's action names, so an op log and a timeline speak the same
// vocabulary.
type OpKind string

const (
	OpKindSubmit        OpKind = "submit"
	OpKindAddSeed       OpKind = "add-entity"
	OpKindRemoveSeed    OpKind = "remove-entity"
	OpKindAddFeature    OpKind = "add-feature"
	OpKindRemoveFeature OpKind = "remove-feature"
	OpKindLookup        OpKind = "lookup"
	OpKindPivot         OpKind = "pivot"
	OpKindRevisit       OpKind = "revisit"
)

// Op is one serializable operation of the protocol — the closed sum type
// behind Engine.Apply. Exactly the fields of its kind are meaningful:
// Keywords for submit, Entity for the entity ops, Feature for the
// feature ops, Step for revisit. Construct ops with the OpXxx helpers.
type Op struct {
	Kind     OpKind
	Keywords string          // OpKindSubmit
	Entity   rdf.TermID      // OpKindAddSeed, OpKindRemoveSeed, OpKindLookup, OpKindPivot
	Feature  semfeat.Feature // OpKindAddFeature, OpKindRemoveFeature
	Step     int             // OpKindRevisit
}

// OpSubmit starts a new keyword query (Fig. 3-a).
func OpSubmit(keywords string) Op { return Op{Kind: OpKindSubmit, Keywords: keywords} }

// OpAddSeed adds an example entity to the query (investigation).
func OpAddSeed(e rdf.TermID) Op { return Op{Kind: OpKindAddSeed, Entity: e} }

// OpRemoveSeed removes an example entity.
func OpRemoveSeed(e rdf.TermID) Op { return Op{Kind: OpKindRemoveSeed, Entity: e} }

// OpAddFeature pins a semantic-feature condition.
func OpAddFeature(f semfeat.Feature) Op { return Op{Kind: OpKindAddFeature, Feature: f} }

// OpRemoveFeature unpins a condition.
func OpRemoveFeature(f semfeat.Feature) Op { return Op{Kind: OpKindRemoveFeature, Feature: f} }

// OpLookup records a profile view (Fig. 3-d); the query is unchanged.
func OpLookup(e rdf.TermID) Op { return Op{Kind: OpKindLookup, Entity: e} }

// OpPivot switches the search domain through an entity (§3.2).
func OpPivot(e rdf.TermID) Op { return Op{Kind: OpKindPivot, Entity: e} }

// OpRevisit restores a historical query from the timeline (1-based).
func OpRevisit(step int) Op { return Op{Kind: OpKindRevisit, Step: step} }

// Fields selects which areas of the interface Apply/Evaluate assemble.
// The heat map is by far the most expensive area, so callers that only
// need the x-axis ask for FieldEntities and skip its construction
// entirely (the HTTP server maps ?include= onto this).
type Fields uint8

const (
	// FieldEntities is the recommendation area (c): the x-axis.
	FieldEntities Fields = 1 << iota
	// FieldFeatures is the semantic-feature area (e): the y-axis.
	FieldFeatures
	// FieldHeatmap is the explanation area (f).
	FieldHeatmap
	// FieldTimeline is the query history (g).
	FieldTimeline

	// FieldNone assembles only the query description — the cheapest
	// acknowledgement of an applied op.
	FieldNone Fields = 0
	// FieldsAll assembles the full interface state.
	FieldsAll = FieldEntities | FieldFeatures | FieldHeatmap | FieldTimeline
)

var fieldNames = []struct {
	name string
	bit  Fields
}{
	{"entities", FieldEntities},
	{"features", FieldFeatures},
	{"heatmap", FieldHeatmap},
	{"timeline", FieldTimeline},
}

// ParseFields parses a comma-separated field selection
// ("entities,features,heatmap,timeline"). The empty string selects
// everything; an unknown name is a KindInvalid error.
func ParseFields(s string) (Fields, error) {
	if strings.TrimSpace(s) == "" {
		return FieldsAll, nil
	}
	var out Fields
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		found := false
		for _, fn := range fieldNames {
			if fn.name == tok {
				out |= fn.bit
				found = true
				break
			}
		}
		if !found {
			return 0, Errf(KindInvalid, "unknown field %q (valid: entities, features, heatmap, timeline)", tok)
		}
	}
	return out, nil
}

// String renders the selection in ParseFields form.
func (f Fields) String() string {
	var parts []string
	for _, fn := range fieldNames {
		if f&fn.bit != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, ",")
}

// OpDTO is the wire form of an Op: symbolic references (entity IRIs or
// names, anchor:predicate feature labels) so an op log survives process
// restarts and graph rebuilds, which term IDs do not. It is both the
// /api/v1 request format and the session-file format.
type OpDTO struct {
	Op       string `json:"op"`
	Keywords string `json:"keywords,omitempty"`
	Entity   string `json:"entity,omitempty"`
	EntityID uint32 `json:"entityId,omitempty"`
	Feature  string `json:"feature,omitempty"`
	Step     int    `json:"step,omitempty"`
}

// EncodeOp converts an op to its wire form against the graph. Entities
// are stored as full IRIs.
func EncodeOp(g *kg.Graph, op Op) OpDTO {
	d := OpDTO{Op: string(op.Kind)}
	switch op.Kind {
	case OpKindSubmit:
		d.Keywords = op.Keywords
	case OpKindAddSeed, OpKindRemoveSeed, OpKindLookup, OpKindPivot:
		d.Entity = g.Dict().Term(op.Entity).Value
	case OpKindAddFeature, OpKindRemoveFeature:
		d.Feature = semfeat.Label(g, op.Feature)
	case OpKindRevisit:
		d.Step = op.Step
	}
	return d
}

// DecodeOp resolves a wire op against the graph, returning typed errors:
// KindNotFound for unknown entities, KindInvalid for malformed ops or
// unresolvable feature labels.
func DecodeOp(g *kg.Graph, d OpDTO) (Op, error) {
	switch kind := OpKind(d.Op); kind {
	case OpKindSubmit:
		return OpSubmit(d.Keywords), nil
	case OpKindAddSeed, OpKindRemoveSeed, OpKindLookup, OpKindPivot:
		id, err := decodeEntity(g, d)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: kind, Entity: id}, nil
	case OpKindAddFeature, OpKindRemoveFeature:
		if d.Feature == "" {
			return Op{}, Errf(KindInvalid, "op %q needs a feature label", d.Op)
		}
		f, err := semfeat.Parse(g, d.Feature)
		if err != nil {
			return Op{}, &Error{Kind: KindInvalid, Msg: err.Error(), Err: err}
		}
		return Op{Kind: kind, Feature: f}, nil
	case OpKindRevisit:
		return OpRevisit(d.Step), nil
	default:
		return Op{}, Errf(KindInvalid, "unknown op kind %q", d.Op)
	}
}

func decodeEntity(g *kg.Graph, d OpDTO) (rdf.TermID, error) {
	if d.EntityID != 0 {
		id := rdf.TermID(d.EntityID)
		if !g.IsEntity(id) {
			return rdf.NoTerm, Errf(KindNotFound, "id %d is not an entity", d.EntityID)
		}
		return id, nil
	}
	if d.Entity != "" {
		if id := g.EntityByName(d.Entity); id != rdf.NoTerm {
			return id, nil
		}
		return rdf.NoTerm, Errf(KindNotFound, "unknown entity %q", d.Entity)
	}
	return rdf.NoTerm, Errf(KindInvalid, "op %q needs an entity (name, IRI or id)", d.Op)
}
