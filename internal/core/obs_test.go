package core_test

import (
	"context"
	"testing"

	"pivote/internal/core"
	"pivote/internal/obs"
	"pivote/internal/synth"
)

// TestStageRecorder checks that a Recorder attached to the request
// context accumulates the engine's per-stage timings.
func TestStageRecorder(t *testing.T) {
	g := submitSetup()
	eng := core.New(g, core.Options{})

	rec := new(obs.Recorder)
	ctx := obs.WithRecorder(context.Background(), rec)
	res, err := eng.Apply(ctx, core.OpSubmit("forrest gump"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entities) == 0 {
		t.Fatal("no entities")
	}
	if rec.Get(obs.StageSearch) <= 0 {
		t.Fatalf("search stage not recorded: %v", rec.Get(obs.StageSearch))
	}
	if rec.Get(obs.StageRank) <= 0 {
		t.Fatalf("rank stage not recorded: %v", rec.Get(obs.StageRank))
	}
	if rec.Get(obs.StageHeatmap) <= 0 {
		t.Fatalf("heatmap stage not recorded: %v", rec.Get(obs.StageHeatmap))
	}

	// A pivot goes through the structured path: expand must show up.
	rec.Reset()
	ent := g.EntityByName("Forrest_Gump")
	if _, err := eng.Apply(ctx, core.OpPivot(ent)); err != nil {
		t.Fatal(err)
	}
	if rec.Get(obs.StageExpand) <= 0 {
		t.Fatalf("expand stage not recorded: %v", rec.Get(obs.StageExpand))
	}

	// Disabled instrumentation records nothing.
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	rec.Reset()
	if _, err := eng.Apply(ctx, core.OpSubmit("forrest gump")); err != nil {
		t.Fatal(err)
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if rec.Get(s) != 0 {
			t.Fatalf("stage %v recorded while disabled", s)
		}
	}
}

// TestStageRecorderSynthSmall guards the zero-value path: no recorder
// on the context must not panic anywhere.
func TestStageRecorderSynthSmall(t *testing.T) {
	g := synth.Generate(synth.Scaled(50)).Graph
	eng := core.New(g, core.Options{})
	if _, err := eng.Apply(context.Background(), core.OpSubmit("forrest gump")); err != nil {
		t.Fatal(err)
	}
}
