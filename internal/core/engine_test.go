package core

import (
	"strings"
	"testing"

	"pivote/internal/kgtest"
	"pivote/internal/semfeat"
)

func newEngine(t testing.TB) (*Engine, *kgtest.Fixture) {
	t.Helper()
	f := kgtest.Build()
	return New(f.Graph, Options{TopEntities: 10, TopFeatures: 8}), f
}

func TestSubmitKeywordQuery(t *testing.T) {
	e, f := newEngine(t)
	res := e.Submit("forrest gump")
	if len(res.Entities) == 0 {
		t.Fatal("no entities for keyword query")
	}
	if res.Entities[0].Entity != f.E("Forrest_Gump") {
		t.Fatalf("top entity = %s, want Forrest Gump", res.Entities[0].Name)
	}
	if len(res.Features) == 0 {
		t.Fatal("no recommended features after keyword query")
	}
	if res.Heat == nil || len(res.Heat.Values) == 0 {
		t.Fatal("no heat map")
	}
	if len(res.Timeline) != 1 {
		t.Fatalf("timeline length %d, want 1", len(res.Timeline))
	}
}

func TestInvestigationBySeed(t *testing.T) {
	// "Find films similar to Forrest Gump" by specifying the entity.
	e, f := newEngine(t)
	e.Submit("forrest gump")
	res := e.AddSeed(f.E("Forrest_Gump"))
	if len(res.Entities) == 0 {
		t.Fatal("no similar entities")
	}
	for _, r := range res.Entities {
		if r.Entity == f.E("Forrest_Gump") {
			t.Fatal("seed leaked into results")
		}
		if got := e.Graph().PrimaryType(r.Entity); got != f.E("Film") {
			t.Fatalf("non-film %s in investigation results", r.Name)
		}
	}
}

func TestFeatureConditionQuery(t *testing.T) {
	// "Find films starring Tom Hanks" by pinning the semantic feature.
	e, f := newEngine(t)
	th := semfeat.Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:starring"), Dir: semfeat.Backward}
	res := e.AddFeature(th)
	if len(res.Entities) != 6 {
		t.Fatalf("Tom_Hanks:starring returned %d films, want 6", len(res.Entities))
	}
	for _, r := range res.Entities {
		if !e.Features().Holds(r.Entity, th) {
			t.Fatalf("%s does not hold the pinned condition", r.Name)
		}
	}
	if res.Features[0].Feature != th {
		t.Fatal("pinned feature not first on the y-axis")
	}
}

func TestConjunctiveFeatureConditions(t *testing.T) {
	e, f := newEngine(t)
	th := semfeat.Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:starring"), Dir: semfeat.Backward}
	rz := semfeat.Feature{Anchor: f.E("Robert_Zemeckis"), Pred: f.E("p:director"), Dir: semfeat.Backward}
	e.AddFeature(th)
	res := e.AddFeature(rz)
	// Films starring Hanks AND directed by Zemeckis: Forrest Gump and
	// Cast Away.
	if len(res.Entities) != 2 {
		t.Fatalf("conjunction returned %d films, want 2: %+v", len(res.Entities), res.Entities)
	}
	names := map[string]bool{}
	for _, r := range res.Entities {
		names[r.Name] = true
	}
	if !names["Forrest Gump"] || !names["Cast Away"] {
		t.Fatalf("conjunction = %v", names)
	}
}

func TestSeedPlusConditionExcludesSeed(t *testing.T) {
	e, f := newEngine(t)
	th := semfeat.Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:starring"), Dir: semfeat.Backward}
	e.AddFeature(th)
	res := e.AddSeed(f.E("Forrest_Gump"))
	for _, r := range res.Entities {
		if r.Entity == f.E("Forrest_Gump") {
			t.Fatal("seed leaked into condition results")
		}
	}
	if len(res.Entities) != 5 {
		t.Fatalf("got %d films, want 5 (6 Hanks films minus the seed)", len(res.Entities))
	}
}

func TestRemoveSeedAndFeature(t *testing.T) {
	e, f := newEngine(t)
	th := semfeat.Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:starring"), Dir: semfeat.Backward}
	e.AddFeature(th)
	e.AddSeed(f.E("Forrest_Gump"))
	e.RemoveFeature(th)
	res := e.RemoveSeed(f.E("Forrest_Gump"))
	if !res.Query.IsEmpty() {
		t.Fatalf("query not empty after removals: %+v", res.Query)
	}
	if len(res.Entities) != 0 {
		t.Fatal("empty query produced results")
	}
}

func TestLookupReturnsProfileWithoutChangingResults(t *testing.T) {
	e, f := newEngine(t)
	e.Submit("forrest gump")
	before := e.Evaluate()
	p := e.Lookup(f.E("Forrest_Gump"))
	if p.Name != "Forrest Gump" {
		t.Fatalf("profile name = %q", p.Name)
	}
	after := e.Evaluate()
	if len(before.Entities) != len(after.Entities) {
		t.Fatal("lookup changed the result set")
	}
	// But it is recorded on the timeline.
	found := false
	for _, a := range e.Session().Timeline() {
		if strings.Contains(a.Label, "lookup") {
			found = true
		}
	}
	if !found {
		t.Fatal("lookup not recorded in timeline")
	}
}

func TestPivotSwitchesDomain(t *testing.T) {
	// §3.2: from films, pivot into the Actor domain via Tom Hanks.
	e, f := newEngine(t)
	e.Submit("forrest gump")
	e.AddSeed(f.E("Forrest_Gump"))
	res := e.Pivot(f.E("Tom_Hanks"))
	if len(res.Query.Seeds) != 1 || res.Query.Seeds[0] != f.E("Tom_Hanks") {
		t.Fatalf("pivot query = %+v", res.Query)
	}
	for _, r := range res.Entities {
		if got := e.Graph().PrimaryType(r.Entity); got != f.E("Actor") {
			t.Fatalf("pivot produced non-actor %s (%s)", r.Name, e.Graph().Name(got))
		}
	}
	if len(res.Entities) == 0 {
		t.Fatal("pivot produced no actors")
	}
}

func TestPivotToSparseDomainFallsBackToRandomWalk(t *testing.T) {
	// Directors share no direct neighbours (each film has one director),
	// so the SF extents yield no same-type candidates; the engine must
	// fall back to the random walk and still recommend directors
	// connected through film→actor→film chains.
	e, f := newEngine(t)
	res := e.Pivot(f.E("Robert_Zemeckis"))
	if len(res.Entities) == 0 {
		t.Fatal("pivot to Director domain returned nothing")
	}
	for _, r := range res.Entities {
		if got := e.Graph().PrimaryType(r.Entity); got != f.E("Director") {
			t.Fatalf("fallback produced non-director %s", r.Name)
		}
		if r.Entity == f.E("Robert_Zemeckis") {
			t.Fatal("seed leaked into fallback results")
		}
	}
	// Ron Howard directs Apollo 13, which shares Hanks/Sinise with
	// Zemeckis films — he must be reachable.
	found := false
	for _, r := range res.Entities {
		if r.Entity == f.E("Ron_Howard") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Ron Howard missing from fallback results: %+v", res.Entities)
	}
}

func TestPivotOnFeature(t *testing.T) {
	e, f := newEngine(t)
	e.Submit("forrest gump")
	th := semfeat.Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:starring"), Dir: semfeat.Backward}
	res := e.PivotOnFeature(th)
	if len(res.Query.Seeds) != 1 || res.Query.Seeds[0] != f.E("Tom_Hanks") {
		t.Fatal("PivotOnFeature did not seed the anchor")
	}
}

func TestRevisitRestoresResults(t *testing.T) {
	e, f := newEngine(t)
	first := e.Submit("forrest gump")
	e.Pivot(f.E("Tom_Hanks"))
	res, err := e.Revisit(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entities) != len(first.Entities) {
		t.Fatalf("revisit returned %d entities, original %d", len(res.Entities), len(first.Entities))
	}
	if res.Entities[0].Entity != first.Entities[0].Entity {
		t.Fatal("revisit changed the top result")
	}
	if _, err := e.Revisit(99); err == nil {
		t.Fatal("revisit of absent step did not error")
	}
}

func TestDescribeQuery(t *testing.T) {
	e, f := newEngine(t)
	e.Submit("gump")
	e.AddSeed(f.E("Forrest_Gump"))
	th := semfeat.Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:starring"), Dir: semfeat.Backward}
	res := e.AddFeature(th)
	for _, want := range []string{`keywords="gump"`, "entities=[Forrest Gump]", "features=[Tom_Hanks:starring]"} {
		if !strings.Contains(res.Description, want) {
			t.Fatalf("description %q missing %q", res.Description, want)
		}
	}
	if got := e.DescribeQuery(e.Session().Current()); got != res.Description {
		t.Fatal("DescribeQuery mismatch")
	}
}

func TestRenderASCIIContainsAllAreas(t *testing.T) {
	e, f := newEngine(t)
	e.Submit("forrest gump")
	res := e.AddSeed(f.E("Forrest_Gump"))
	out := res.RenderASCII()
	for _, want := range []string{
		"query (a,b)", "entities (c)", "semantic features (e)",
		"explanation heat map (f)", "timeline (g)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestRenderASCIIEmptyQuery(t *testing.T) {
	e, _ := newEngine(t)
	res := e.Evaluate()
	out := res.RenderASCII()
	if !strings.Contains(out, "(empty query)") || !strings.Contains(out, "(none)") {
		t.Fatalf("empty render unexpected:\n%s", out)
	}
}

func TestArchitectureDOT(t *testing.T) {
	dot := ArchitectureDOT()
	for _, want := range []string{"digraph", "Search Engine", "Recommendation Engine", "Knowledge Graph Store"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("architecture DOT missing %q", want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.TopEntities != 20 || o.TopFeatures != 15 || o.PseudoSeeds != 3 {
		t.Fatalf("defaults = %+v", o)
	}
	if o.Expand == nil || !o.Expand.SameTypeOnly {
		t.Fatal("expand defaults wrong")
	}
}

func TestScenarioFromThePaper(t *testing.T) {
	// The full §3 walk-through: query → lookup → investigate → pivot →
	// revisit, asserting the timeline shape of Fig. 4.
	e, f := newEngine(t)
	e.Submit("forrest gump")
	e.Lookup(f.E("Forrest_Gump"))
	e.AddSeed(f.E("Forrest_Gump"))
	e.Pivot(f.E("Tom_Hanks"))
	if _, err := e.Revisit(1); err != nil {
		t.Fatal(err)
	}
	tl := e.Session().Timeline()
	if len(tl) != 5 {
		t.Fatalf("timeline length %d, want 5", len(tl))
	}
	path := e.Session().PathASCII()
	for _, want := range []string{"submit", "lookup", "add-entity", "pivot", "revisit"} {
		if !strings.Contains(path, want) {
			t.Fatalf("path missing %q:\n%s", want, path)
		}
	}
}

func BenchmarkSubmitAndInvestigate(b *testing.B) {
	f := kgtest.Build()
	e := New(f.Graph, Options{})
	gump := f.E("Forrest_Gump")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Submit("forrest gump")
		if res := e.AddSeed(gump); len(res.Entities) == 0 {
			b.Fatal("no results")
		}
	}
}
