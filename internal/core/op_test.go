package core

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"pivote/internal/kgtest"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

func TestApplyMatchesLegacyMethods(t *testing.T) {
	ctx := context.Background()
	a, f := newEngine(t)
	b := New(f.Graph, Options{TopEntities: 10, TopFeatures: 8})

	legacy := a.Submit("forrest gump")
	viaOp, err := b.Apply(ctx, OpSubmit("forrest gump"))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Description != viaOp.Description {
		t.Fatalf("descriptions differ: %q vs %q", legacy.Description, viaOp.Description)
	}
	if !reflect.DeepEqual(legacy.Entities, viaOp.Entities) {
		t.Fatal("entities differ between legacy Submit and Apply")
	}

	legacy = a.AddSeed(f.E("Forrest_Gump"))
	viaOp, err = b.Apply(ctx, OpAddSeed(f.E("Forrest_Gump")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Entities, viaOp.Entities) {
		t.Fatal("entities differ between legacy AddSeed and Apply")
	}
	if len(b.Ops()) != 2 {
		t.Fatalf("op log = %d ops, want 2", len(b.Ops()))
	}
}

func TestApplyTypedErrors(t *testing.T) {
	ctx := context.Background()
	e, f := newEngine(t)
	cases := []struct {
		name string
		op   Op
		kind ErrKind
	}{
		{"unknown entity", OpAddSeed(rdf.TermID(999999)), KindNotFound},
		{"pivot to non-entity", OpPivot(rdf.NoTerm), KindNotFound},
		{"lookup non-entity", OpLookup(rdf.TermID(999999)), KindNotFound},
		{"bad feature", OpAddFeature(semfeat.Feature{}), KindInvalid},
		{"revisit out of range", OpRevisit(99), KindInvalid},
		{"unknown kind", Op{Kind: OpKind("frobnicate")}, KindInvalid},
	}
	for _, tc := range cases {
		res, err := e.Apply(ctx, tc.op)
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if res != nil {
			t.Fatalf("%s: non-nil result alongside error", tc.name)
		}
		if got := KindOf(err); got != tc.kind {
			t.Fatalf("%s: kind = %s, want %s", tc.name, got, tc.kind)
		}
		var ce *Error
		if !errors.As(err, &ce) {
			t.Fatalf("%s: error is not *core.Error", tc.name)
		}
	}
	// LookupCtx surfaces the same taxonomy; nothing is recorded and the
	// zero profile comes back.
	if p, err := e.LookupCtx(ctx, rdf.TermID(999999)); err == nil || KindOf(err) != KindNotFound {
		t.Fatalf("LookupCtx on non-entity: (%+v, %v)", p, err)
	} else if p.Name != "" {
		t.Fatalf("failed LookupCtx returned a profile: %+v", p)
	}
	// Failed ops leave no trace: no actions, no ops, empty query.
	if e.Session().Len() != 0 || len(e.Ops()) != 0 {
		t.Fatalf("failed ops recorded state: %d actions, %d ops", e.Session().Len(), len(e.Ops()))
	}
	_ = f
}

func TestApplyCanceledLeavesSessionIntact(t *testing.T) {
	e, f := newEngine(t)
	ctx := context.Background()
	if _, err := e.Apply(ctx, OpSubmit("forrest gump")); err != nil {
		t.Fatal(err)
	}
	before := e.Session().Current()
	beforeLen := e.Session().Len()
	beforeOps := e.Ops()

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	res, err := e.Apply(canceled, OpAddSeed(f.E("Forrest_Gump")))
	if err == nil || res != nil {
		t.Fatalf("canceled Apply returned (%v, %v)", res, err)
	}
	if got := KindOf(err); got != KindCanceled {
		t.Fatalf("kind = %s, want %s", got, KindCanceled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("typed error does not wrap context.Canceled")
	}

	// The session is exactly as before the canceled op.
	if got := e.Session().Current(); !reflect.DeepEqual(got, before) {
		t.Fatalf("live query corrupted: %+v vs %+v", got, before)
	}
	if e.Session().Len() != beforeLen {
		t.Fatalf("timeline grew: %d vs %d", e.Session().Len(), beforeLen)
	}
	if !reflect.DeepEqual(e.Ops(), beforeOps) {
		t.Fatal("op log changed by a canceled op")
	}
	// And the engine still works.
	if _, err := e.Apply(ctx, OpAddSeed(f.E("Forrest_Gump"))); err != nil {
		t.Fatal(err)
	}
}

// countdownCtx reports cancellation only after Err has been consulted n
// times — a deterministic stand-in for a context canceled mid-flight,
// deep inside the evaluation loops.
type countdownCtx struct {
	context.Context
	left atomic.Int32
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) >= 0 {
		return nil
	}
	return context.Canceled
}

func TestApplyAbortsInFlight(t *testing.T) {
	e, f := newEngine(t)
	if _, err := e.Apply(context.Background(), OpSubmit("forrest gump")); err != nil {
		t.Fatal(err)
	}
	before := e.Session().Current()
	beforeLen := e.Session().Len()

	// The op passes the pre-checks and mutates the session; cancellation
	// then fires inside evaluation (scatter/rank loops), which must
	// rewind the mutation.
	ctx := &countdownCtx{Context: context.Background()}
	ctx.left.Store(3)
	res, err := e.Apply(ctx, OpAddSeed(f.E("Forrest_Gump")))
	if err == nil || res != nil {
		t.Fatalf("in-flight cancel returned (%v, %v)", res, err)
	}
	if got := KindOf(err); got != KindCanceled {
		t.Fatalf("kind = %s, want %s", got, KindCanceled)
	}
	if got := e.Session().Current(); !reflect.DeepEqual(got, before) {
		t.Fatalf("in-flight cancel corrupted the query: %+v vs %+v", got, before)
	}
	if e.Session().Len() != beforeLen || len(e.Ops()) != 1 {
		t.Fatalf("in-flight cancel left %d actions / %d ops", e.Session().Len(), len(e.Ops()))
	}
	// The same op succeeds afterwards.
	if _, err := e.Apply(context.Background(), OpAddSeed(f.E("Forrest_Gump"))); err != nil {
		t.Fatal(err)
	}
}

func TestApplyFieldsLazyAssembly(t *testing.T) {
	ctx := context.Background()
	e, f := newEngine(t)

	res, err := e.ApplyFields(ctx, OpAddSeed(f.E("Forrest_Gump")), FieldEntities)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entities) == 0 {
		t.Fatal("no entities under FieldEntities")
	}
	if res.Heat != nil {
		t.Fatal("heat map built although not requested")
	}
	if res.Features != nil || res.Timeline != nil {
		t.Fatal("unrequested areas assembled")
	}

	full, err := e.EvaluateCtx(ctx, FieldsAll)
	if err != nil {
		t.Fatal(err)
	}
	if full.Heat == nil || len(full.Heat.Values) == 0 {
		t.Fatal("FieldsAll did not build the heat map")
	}
	if len(full.Timeline) != 1 {
		t.Fatalf("timeline = %d actions", len(full.Timeline))
	}

	// FieldNone: acknowledgement only.
	none, err := e.ApplyFields(ctx, OpLookup(f.E("Forrest_Gump")), FieldNone)
	if err != nil {
		t.Fatal(err)
	}
	if none.Entities != nil || none.Features != nil || none.Heat != nil || none.Timeline != nil {
		t.Fatal("FieldNone assembled interface areas")
	}
	if none.Description == "" {
		t.Fatal("FieldNone lost the query description")
	}
}

func TestApplyOpsBatchEquivalentToSequential(t *testing.T) {
	ctx := context.Background()
	f := kgtest.Build()
	th := semfeat.Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:starring"), Dir: semfeat.Backward}
	ops := []Op{
		OpSubmit("forrest gump"),
		OpAddSeed(f.E("Forrest_Gump")),
		OpAddFeature(th),
		OpRemoveFeature(th),
		OpPivot(f.E("Tom_Hanks")),
		OpRevisit(2),
	}

	seq := New(f.Graph, Options{TopEntities: 10, TopFeatures: 8})
	var want *Result
	for _, op := range ops {
		var err error
		want, err = seq.Apply(ctx, op)
		if err != nil {
			t.Fatal(err)
		}
	}

	batch := New(f.Graph, Options{TopEntities: 10, TopFeatures: 8})
	got, applied, err := batch.ApplyOps(ctx, ops, FieldsAll)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(ops) {
		t.Fatalf("applied = %d, want %d", applied, len(ops))
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("batch result differs from sequential:\nseq:   %+v\nbatch: %+v", want, got)
	}
}

func TestApplyOpsRollsBackAtomically(t *testing.T) {
	ctx := context.Background()
	e, f := newEngine(t)
	if _, err := e.Apply(ctx, OpSubmit("apollo")); err != nil {
		t.Fatal(err)
	}
	before := e.Session().Current()

	_, idx, err := e.ApplyOps(ctx, []Op{
		OpSubmit("forrest gump"),
		OpAddSeed(f.E("Forrest_Gump")),
		OpAddSeed(rdf.TermID(999999)), // fails here
		OpPivot(f.E("Tom_Hanks")),
	}, FieldsAll)
	if err == nil {
		t.Fatal("no error from failing batch")
	}
	if idx != 2 {
		t.Fatalf("failing op index = %d, want 2", idx)
	}
	if KindOf(err) != KindNotFound {
		t.Fatalf("kind = %s", KindOf(err))
	}
	// Nothing of the batch survived — not even the valid prefix.
	if got := e.Session().Current(); !reflect.DeepEqual(got, before) {
		t.Fatalf("batch partially applied: %+v", got)
	}
	if len(e.Ops()) != 1 {
		t.Fatalf("op log = %d ops, want 1", len(e.Ops()))
	}
}

func TestOpWireRoundTrip(t *testing.T) {
	f := kgtest.Build()
	th := semfeat.Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:starring"), Dir: semfeat.Backward}
	ops := []Op{
		OpSubmit("forrest gump"),
		OpAddSeed(f.E("Forrest_Gump")),
		OpRemoveSeed(f.E("Forrest_Gump")),
		OpAddFeature(th),
		OpRemoveFeature(th),
		OpLookup(f.E("Apollo_13")),
		OpPivot(f.E("Tom_Hanks")),
		OpRevisit(3),
	}
	for _, op := range ops {
		dto := EncodeOp(f.Graph, op)
		raw, err := json.Marshal(dto)
		if err != nil {
			t.Fatal(err)
		}
		var back OpDTO
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeOp(f.Graph, back)
		if err != nil {
			t.Fatalf("%s: %v", op.Kind, err)
		}
		if got != op {
			t.Fatalf("round trip changed op: %+v vs %+v", got, op)
		}
	}
}

func TestDecodeOpErrors(t *testing.T) {
	f := kgtest.Build()
	cases := []struct {
		name string
		dto  OpDTO
		kind ErrKind
	}{
		{"unknown kind", OpDTO{Op: "explode"}, KindInvalid},
		{"unknown entity name", OpDTO{Op: "add-entity", Entity: "Zzz_Nope"}, KindNotFound},
		{"bad entity id", OpDTO{Op: "pivot", EntityID: 999999}, KindNotFound},
		{"missing entity", OpDTO{Op: "lookup"}, KindInvalid},
		{"missing feature", OpDTO{Op: "add-feature"}, KindInvalid},
		{"bad feature label", OpDTO{Op: "add-feature", Feature: "garbage"}, KindInvalid},
	}
	for _, tc := range cases {
		_, err := DecodeOp(f.Graph, tc.dto)
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if got := KindOf(err); got != tc.kind {
			t.Fatalf("%s: kind = %s, want %s", tc.name, got, tc.kind)
		}
	}
}

func TestParseFields(t *testing.T) {
	cases := []struct {
		in   string
		want Fields
		err  bool
	}{
		{"", FieldsAll, false},
		{"entities", FieldEntities, false},
		{"entities,heatmap", FieldEntities | FieldHeatmap, false},
		{" features , timeline ", FieldFeatures | FieldTimeline, false},
		{"entities,bogus", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseFields(tc.in)
		if tc.err {
			if err == nil {
				t.Fatalf("ParseFields(%q): no error", tc.in)
			}
			if KindOf(err) != KindInvalid {
				t.Fatalf("ParseFields(%q): kind = %s", tc.in, KindOf(err))
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseFields(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseFields(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSessionFileIsReplayableOpLog(t *testing.T) {
	ctx := context.Background()
	e, f := newEngine(t)
	if _, _, err := e.ApplyOps(ctx, []Op{
		OpSubmit("forrest gump"),
		OpAddSeed(f.E("Forrest_Gump")),
		OpPivot(f.E("Tom_Hanks")),
	}, FieldNone); err != nil {
		t.Fatal(err)
	}
	raw, err := e.SaveSession()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"version": 2`) || !strings.Contains(string(raw), `"op": "pivot"`) {
		t.Fatalf("session file is not a v2 op log:\n%s", raw)
	}

	// Loading on a freshly built graph replays the log: same op log, same
	// timeline, same live query.
	f2 := kgtest.Build()
	e2 := New(f2.Graph, Options{TopEntities: 10, TopFeatures: 8})
	if _, err := e2.LoadSession(raw); err != nil {
		t.Fatal(err)
	}
	if len(e2.Ops()) != 3 || e2.Session().Len() != 3 {
		t.Fatalf("replay produced %d ops / %d actions, want 3/3", len(e2.Ops()), e2.Session().Len())
	}
	if q := e2.Session().Current(); len(q.Seeds) != 1 || q.Seeds[0] != f2.E("Tom_Hanks") {
		t.Fatalf("live query after replay = %+v", q)
	}
	// A second save is byte-identical — the log is canonical.
	raw2, err := e2.SaveSession()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatal("op log changed across save/load/save")
	}
}

func TestLoadSessionLegacyV1(t *testing.T) {
	e, f := newEngine(t)
	gumpIRI := f.Graph.Dict().Term(f.E("Forrest_Gump")).Value
	v1 := `{
	  "version": 1,
	  "actions": [
	    {"step": 1, "kind": "submit", "query": {"keywords": "forrest gump"}},
	    {"step": 2, "kind": "add-entity", "query": {
	      "keywords": "forrest gump",
	      "seeds": ["` + gumpIRI + `"],
	      "features": ["Tom_Hanks:starring"]}}
	  ]
	}`
	res, err := e.LoadSession([]byte(v1))
	if err != nil {
		t.Fatal(err)
	}
	q := e.Session().Current()
	if q.Keywords != "forrest gump" || len(q.Seeds) != 1 || len(q.Features) != 1 {
		t.Fatalf("v1 final query not restored: %+v", q)
	}
	if res == nil || res.Description == "" {
		t.Fatal("no evaluated result from v1 load")
	}
}

func TestLoadSessionErrorsLeaveSessionIntact(t *testing.T) {
	ctx := context.Background()
	e, _ := newEngine(t)
	if _, err := e.Apply(ctx, OpSubmit("apollo")); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
		kind ErrKind
	}{
		{"not json", "{bad", KindInvalid},
		{"bad version", `{"version": 7}`, KindInvalid},
		{"unknown entity", `{"version":2,"ops":[{"op":"add-entity","entity":"Zzz_Nope"}]}`, KindNotFound},
	}
	for _, tc := range cases {
		if _, err := e.LoadSession([]byte(tc.data)); err == nil {
			t.Fatalf("%s: no error", tc.name)
		} else if got := KindOf(err); got != tc.kind {
			t.Fatalf("%s: kind = %s, want %s", tc.name, got, tc.kind)
		}
	}
	if q := e.Session().Current(); q.Keywords != "apollo" {
		t.Fatalf("failed loads corrupted the session: %+v", q)
	}
	if len(e.Ops()) != 1 {
		t.Fatalf("op log = %d, want 1", len(e.Ops()))
	}
}
