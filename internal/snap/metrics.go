package snap

import (
	"time"

	"pivote/internal/obs"
)

var (
	mOpenFile = obs.Default.Histogram("pivote_snap_open_seconds",
		"Snapshot open+verify latency by source.", obs.L("source", "file"))
	mOpenBytes = obs.Default.Histogram("pivote_snap_open_seconds",
		"Snapshot open+verify latency by source.", obs.L("source", "bytes"))
	mWriteSeconds = obs.Default.Histogram("pivote_snap_write_seconds",
		"Snapshot write latency (NewWriter through Close).")
)

func snapStart() time.Time {
	if !obs.On() {
		return time.Time{}
	}
	return time.Now()
}

func snapEnd(h *obs.Histogram, t0 time.Time) {
	if t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0))
}
