package snap

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"time"
)

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64,
// which keeps the mandatory whole-file checksum pass at memory speed.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type sectionMeta struct {
	name string
	off  uint64
	len  uint64
	crc  uint32
}

// Writer streams a snapshot file: call Begin to open a named section,
// the field methods to append its payload, and Close to emit the footer
// and trailer. Errors are sticky; Close reports the first one.
//
// Every field method keeps the file position 8-byte aligned, so a
// reader can alias arrays straight out of the mapping. All encoding is
// little-endian regardless of host order.
type Writer struct {
	bw  *bufio.Writer
	off uint64 // absolute file offset written so far
	err error

	sections []sectionMeta
	cur      int // index into sections, -1 when no section open
	crc      uint32

	scratch [8]byte
	// chunk is the reused encode buffer for slice fields on hosts where
	// a direct alias is impossible (big-endian) and for record encoding.
	chunk []byte

	// began anchors the write-latency observation; zero when the obs
	// layer was off at construction.
	began time.Time
}

// NewWriter wraps w. The caller owns w; Close flushes but does not
// close it.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{bw: bufio.NewWriterSize(w, 1<<20), cur: -1, began: snapStart()}
	sw.writeRaw([]byte(Magic))
	sw.putU32(Version)
	sw.putU32(layoutMarker)
	sw.pad8()
	return sw
}

// Begin opens a new section, closing the previous one. Section names
// must be unique within a file; the footer table maps them to spans.
// Alignment padding is written while the previous section is still
// open, so every file byte between header and footer belongs to some
// checksummed section span.
func (w *Writer) Begin(name string) {
	w.pad8()
	w.endSection()
	w.sections = append(w.sections, sectionMeta{name: name, off: w.off})
	w.cur = len(w.sections) - 1
	w.crc = 0
}

func (w *Writer) endSection() {
	if w.cur < 0 {
		return
	}
	s := &w.sections[w.cur]
	s.len = w.off - s.off
	s.crc = w.crc
	w.cur = -1
}

// U64 appends one scalar.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:], v)
	w.writeRaw(w.scratch[:])
}

// Bytes appends a length-prefixed byte array.
func (w *Writer) Bytes(v []byte) {
	w.U64(uint64(len(v)))
	w.writeRaw(v)
	w.pad8()
}

// String appends a length-prefixed string.
func (w *Writer) String(v string) {
	w.U64(uint64(len(v)))
	w.writeRaw([]byte(v))
	w.pad8()
}

// U32s appends a length-prefixed []uint32.
func (w *Writer) U32s(v []uint32) {
	w.U64(uint64(len(v)))
	if b := aliasBytesU32(v); b != nil {
		w.writeRaw(b)
	} else {
		w.encodeChunks(len(v), 4, func(i int, dst []byte) {
			binary.LittleEndian.PutUint32(dst, v[i])
		})
	}
	w.pad8()
}

// I32s appends a length-prefixed []int32.
func (w *Writer) I32s(v []int32) {
	w.U64(uint64(len(v)))
	if b := aliasBytesI32(v); b != nil {
		w.writeRaw(b)
	} else {
		w.encodeChunks(len(v), 4, func(i int, dst []byte) {
			binary.LittleEndian.PutUint32(dst, uint32(v[i]))
		})
	}
	w.pad8()
}

// F64s appends a length-prefixed []float64.
func (w *Writer) F64s(v []float64) {
	w.U64(uint64(len(v)))
	if b := aliasBytesF64(v); b != nil {
		w.writeRaw(b)
	} else {
		w.encodeChunks(len(v), 8, func(i int, dst []byte) {
			binary.LittleEndian.PutUint64(dst, mathFloat64bits(v[i]))
		})
	}
	w.pad8()
}

// Records appends a length-prefixed array of n fixed-size records. emit
// must fill dst (elemSize bytes, pre-zeroed) with the little-endian
// encoding of record i — the explicit encode keeps padding bytes
// deterministic, so identical generations produce identical files.
func (w *Writer) Records(n, elemSize int, emit func(i int, dst []byte)) {
	w.U64(uint64(n))
	w.encodeChunks(n, elemSize, emit)
	w.pad8()
}

// encodeChunks encodes n records of elemSize bytes through a bounded
// reusable buffer, so huge arrays never force a matching allocation.
func (w *Writer) encodeChunks(n, elemSize int, emit func(i int, dst []byte)) {
	const target = 64 * 1024
	per := target / elemSize
	if per < 1 {
		per = 1
	}
	if cap(w.chunk) < per*elemSize {
		w.chunk = make([]byte, per*elemSize)
	}
	for i := 0; i < n; {
		m := per
		if n-i < m {
			m = n - i
		}
		buf := w.chunk[:m*elemSize]
		clear(buf)
		for j := 0; j < m; j++ {
			emit(i+j, buf[j*elemSize:(j+1)*elemSize])
		}
		w.writeRaw(buf)
		i += m
	}
}

func (w *Writer) putU32(v uint32) {
	binary.LittleEndian.PutUint32(w.scratch[:4], v)
	w.writeRaw(w.scratch[:4])
}

func (w *Writer) pad8() {
	var zero [8]byte
	if rem := w.off % 8; rem != 0 {
		w.writeRaw(zero[:8-rem])
	}
}

func (w *Writer) writeRaw(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
		return
	}
	if w.cur >= 0 {
		w.crc = crc32.Update(w.crc, castagnoli, b)
	}
	w.off += uint64(len(b))
}

// Close ends the last section, writes the footer section table and the
// trailer, flushes, and returns the first error encountered.
func (w *Writer) Close() error {
	w.pad8()
	w.endSection()
	footerOff := w.off

	// Footer: count, then per section name/off/len/crc. The footer has
	// its own checksum in the trailer so a corrupt table is caught before
	// any span it describes is trusted; every footer byte goes through
	// writeFooter so reader and writer agree on the checksummed span.
	w.crc = 0
	start := len(w.sections)
	binary.LittleEndian.PutUint64(w.scratch[:], uint64(start))
	w.writeFooter(w.scratch[:])
	for _, s := range w.sections[:start] {
		binary.LittleEndian.PutUint64(w.scratch[:], uint64(len(s.name)))
		w.writeFooter(w.scratch[:])
		w.writeFooter([]byte(s.name))
		binary.LittleEndian.PutUint64(w.scratch[:], s.off)
		w.writeFooter(w.scratch[:])
		binary.LittleEndian.PutUint64(w.scratch[:], s.len)
		w.writeFooter(w.scratch[:])
		binary.LittleEndian.PutUint32(w.scratch[:4], s.crc)
		w.writeFooter(w.scratch[:4])
	}
	footerLen := w.off - footerOff

	// Trailer (fixed size, unchecksummed beyond the footer CRC + magic).
	binary.LittleEndian.PutUint64(w.scratch[:], footerOff)
	w.writeRaw(w.scratch[:])
	binary.LittleEndian.PutUint64(w.scratch[:], footerLen)
	w.writeRaw(w.scratch[:])
	binary.LittleEndian.PutUint32(w.scratch[:4], w.crc)
	w.writeRaw(w.scratch[:4])
	w.writeRaw([]byte(endMagic))

	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	snapEnd(mWriteSeconds, w.began)
	return nil
}

// writeFooter is writeRaw that also folds the bytes into the footer
// checksum. The footer is written after endSection, so w.cur is the -2
// sentinel and writeRaw's section-checksum branch is inert; the footer
// CRC accumulates in w.crc directly.
func (w *Writer) writeFooter(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
		return
	}
	w.crc = crc32.Update(w.crc, castagnoli, b)
	w.off += uint64(len(b))
}
