package snap

import (
	"encoding/binary"
	"unsafe"
)

// Typed-slice helpers: the repository's flat arrays are mostly named
// 4-byte integer types (rdf.TermID, semfeat.FeatureID, ...). These
// generic wrappers write them as plain little-endian uint32 arrays and
// alias them back without a copy on little-endian hosts, so packages
// never convert slices element by element.

// PutU32Slice appends a length-prefixed array of a ~uint32 type.
func PutU32Slice[T ~uint32](w *Writer, v []T) {
	w.U64(uint64(len(v)))
	if hostLittleEndian && len(v) > 0 {
		w.writeRaw(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v)))
	} else {
		w.encodeChunks(len(v), 4, func(i int, dst []byte) {
			binary.LittleEndian.PutUint32(dst, uint32(v[i]))
		})
	}
	w.pad8()
}

// U32Slice reads a length-prefixed array of a ~uint32 type, aliased
// from the mapping on little-endian hosts.
func U32Slice[T ~uint32](c *Cursor) []T {
	b := c.arrayBody(4)
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// PutBoolSlice appends a []bool as 0/1 bytes.
func PutBoolSlice(w *Writer, v []bool) {
	w.U64(uint64(len(v)))
	if len(v) > 0 {
		// Go guarantees bool is one byte holding 0 or 1.
		w.writeRaw(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)))
	}
	w.pad8()
}

// BoolSlice reads a []bool written by PutBoolSlice, aliased from the
// mapping. Any byte outside {0, 1} is corruption: aliased Go bools must
// be canonical, so the check is mandatory, not defensive.
func BoolSlice(c *Cursor) []bool {
	b := c.arrayBody(1)
	if len(b) == 0 {
		return nil
	}
	for i, v := range b {
		if v > 1 {
			c.err = corruptf("snap: section %q: non-canonical bool %d at %d", c.name, v, i)
			return nil
		}
	}
	return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), len(b))
}

// RawRecords appends a length-prefixed array of n fixed-size records
// whose in-memory bytes already match the wire layout (little-endian
// fields, no padding). Callers pair it with HostLittleEndian and fall
// back to Records otherwise.
func (w *Writer) RawRecords(n int, b []byte) {
	w.U64(uint64(n))
	w.writeRaw(b)
	w.pad8()
}

// StreamBytes appends a length-prefixed byte array whose content is
// produced incrementally — bulk string blobs stream through it without
// materializing one giant buffer. produce must emit exactly total
// bytes; a mismatch poisons the writer.
func (w *Writer) StreamBytes(total uint64, produce func(emit func(b []byte))) {
	w.U64(total)
	var emitted uint64
	produce(func(b []byte) {
		emitted += uint64(len(b))
		if emitted > total {
			if w.err == nil {
				w.err = corruptf("snap: StreamBytes overflow (%d > %d)", emitted, total)
			}
			return
		}
		w.writeRaw(b)
	})
	if emitted != total && w.err == nil {
		w.err = corruptf("snap: StreamBytes produced %d of %d bytes", emitted, total)
	}
	w.pad8()
}
