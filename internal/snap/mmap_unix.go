//go:build unix

package snap

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. On any mmap failure it silently falls
// back to reading the file into memory — the format and every reader
// above this layer are identical either way; only the paging behaviour
// differs. An empty file cannot be mapped and also falls back.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := fi.Size()
	if size <= 0 || int64(int(size)) != size {
		data, err := os.ReadFile(path)
		return data, false, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		data, rerr := os.ReadFile(path)
		return data, false, rerr
	}
	return data, true, nil
}

func unmap(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
