package snap

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether the running host stores integers
// little-endian — the condition under which the on-disk arrays (defined
// little-endian) can be aliased in place instead of copy-decoded.
var hostLittleEndian = func() bool {
	var x uint32 = layoutMarker
	b := (*[4]byte)(unsafe.Pointer(&x))
	return b[0] == 0x04 && b[3] == 0x01
}()

// The aliasBytes* helpers view a typed slice as its raw bytes for
// writing. They return nil on big-endian hosts, where the caller falls
// back to explicit little-endian encoding.

func aliasBytesU32(v []uint32) []byte {
	if !hostLittleEndian || len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

func aliasBytesI32(v []int32) []byte {
	if !hostLittleEndian || len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

func aliasBytesF64(v []float64) []byte {
	if !hostLittleEndian || len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

// The alias* readers view a little-endian byte span as a typed slice.
// On little-endian hosts the returned slice aliases b — zero copies,
// zero allocations, and the mapping pages fault in lazily. On
// big-endian hosts they decode into a fresh slice. b must be aligned
// for the element type; the snap format guarantees 8-byte alignment of
// every array payload, and both mmap mappings and Go heap blocks are at
// least 8-byte aligned.

func aliasU32s(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func aliasI32s(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func aliasF64s(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// UnsafeString views b as a string without copying. The caller must
// guarantee b is never modified and outlives the string — true for
// snapshot mappings, which stay mapped for the life of the generation
// opened from them.
func UnsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// HostLittleEndian reports whether typed-record aliasing is available
// on this host. Packages aliasing their own fixed-size record types
// (edges, postings, features) gate on it and on their record layout.
func HostLittleEndian() bool { return hostLittleEndian }
