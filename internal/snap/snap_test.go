package snap

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeTestFile builds a two-section snapshot exercising every field
// type and returns its bytes.
func writeTestFile(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin("alpha")
	w.U64(42)
	w.U32s([]uint32{1, 2, 3})
	w.Bytes([]byte("hello world"))
	w.Begin("beta")
	w.I32s([]int32{-1, 0, 7})
	w.F64s([]float64{3.14, -2.5})
	w.String("meta")
	w.Records(2, 12, func(i int, dst []byte) {
		dst[0] = byte(i + 1)
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := writeTestFile(t)
	m, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.U64(); got != 42 {
		t.Fatalf("U64 = %d", got)
	}
	if got := a.U32s(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("U32s = %v", got)
	}
	if got := a.Bytes(); string(got) != "hello world" {
		t.Fatalf("Bytes = %q", got)
	}
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
	b, err := m.Section("beta")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.I32s(); len(got) != 3 || got[0] != -1 || got[2] != 7 {
		t.Fatalf("I32s = %v", got)
	}
	if got := b.F64s(); len(got) != 2 || got[0] != 3.14 || got[1] != -2.5 {
		t.Fatalf("F64s = %v", got)
	}
	if got := b.String(); got != "meta" {
		t.Fatalf("String = %q", got)
	}
	raw, n := b.RecordBytes(12)
	if n != 2 || raw[0] != 1 || raw[12] != 2 {
		t.Fatalf("RecordBytes = %v n=%d", raw, n)
	}
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	if _, err := m.Section("gamma"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing section: %v", err)
	}
}

func TestOpenFileMmap(t *testing.T) {
	data := writeTestFile(t)
	path := filepath.Join(t.TempDir(), "x.pvgen")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c, err := m.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.U64(); got != 42 {
		t.Fatalf("U64 = %d", got)
	}
	if !m.Mmapped() {
		t.Log("mmap unavailable; served via copy-on-read fallback")
	}
}

// TestCorruptionRejected flips, truncates and zeroes bytes all over the
// file; every mutation must yield a typed ErrCorrupt/ErrVersion error,
// never a panic or a success.
func TestCorruptionRejected(t *testing.T) {
	valid := writeTestFile(t)
	if _, err := OpenBytes(valid); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := OpenBytes(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		if _, err := OpenBytes(mut); err == nil {
			t.Fatalf("flip at %d accepted", i)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("flip at %d: untyped error %v", i, err)
		}
	}
}

// TestCursorSticky: a corrupt in-section length makes every subsequent
// read return zeros and Err report the failure once.
func TestCursorSticky(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin("s")
	w.U32s([]uint32{9})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Section("s")
	if err != nil {
		t.Fatal(err)
	}
	// Read more than the section holds.
	_ = c.U32s()
	if got := c.F64s(); got != nil {
		t.Fatalf("read past end returned %v", got)
	}
	if !errors.Is(c.Err(), ErrCorrupt) {
		t.Fatalf("cursor error: %v", c.Err())
	}
}
