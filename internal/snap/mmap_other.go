//go:build !unix

package snap

import "os"

// mapFile on platforms without a usable mmap reads the whole file into
// memory — the copy-on-read fallback. Same format, same zero-copy
// aliasing above this layer; only the paging behaviour differs.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	return data, false, err
}

func unmap([]byte) error { return nil }
