package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Mapping is an opened snapshot: the raw bytes (mmapped when the
// platform supports it, read into memory otherwise) plus the verified
// section table. A Mapping and every slice aliased out of it stay valid
// until Close; structures opened from a snapshot hold the Mapping for
// their lifetime, so in serving processes Close is typically never
// called (the generation lives as long as the process).
type Mapping struct {
	data     []byte
	sections map[string]span
	mmapped  bool
	closed   bool
}

type span struct {
	off, len uint64
}

// Open maps the snapshot file at path and verifies its header, footer
// and every section checksum — the one mandatory O(file) pass; CRC-32C
// is hardware-accelerated, so the pass runs at memory speed and doubles
// as the page-fault warmup of the sections it touches. When mmap is
// unavailable (or fails), the file is read into memory instead —
// copy-on-read, same format, same API.
func Open(path string) (*Mapping, error) {
	defer snapEnd(mOpenFile, snapStart())
	data, mmapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	m, err := openBytes(data, mmapped)
	if err != nil {
		if mmapped {
			_ = unmap(data)
		}
		return nil, err
	}
	return m, nil
}

// OpenBytes opens a snapshot already held in memory — the fuzz surface
// and the transport path (a replica adopting a generation streamed from
// a compactor). The Mapping aliases data; the caller must not modify it.
func OpenBytes(data []byte) (*Mapping, error) {
	defer snapEnd(mOpenBytes, snapStart())
	return openBytes(data, false)
}

func openBytes(data []byte, mmapped bool) (*Mapping, error) {
	if len(data) < headerSize+trailerSize {
		return nil, corruptf("snap: file too short (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, corruptf("snap: bad magic %q", data[:len(Magic)])
	}
	version := binary.LittleEndian.Uint32(data[len(Magic):])
	if version != Version {
		return nil, fmt.Errorf("snap: version %d (want %d): %w", version, Version, ErrVersion)
	}
	if binary.LittleEndian.Uint32(data[len(Magic)+4:]) != layoutMarker {
		return nil, corruptf("snap: bad layout marker")
	}

	// Trailer: footer offset/length, footer checksum, end magic.
	tr := data[len(data)-trailerSize:]
	if string(tr[20:]) != endMagic {
		return nil, corruptf("snap: bad end magic (truncated file?)")
	}
	footerOff := binary.LittleEndian.Uint64(tr)
	footerLen := binary.LittleEndian.Uint64(tr[8:])
	footerCRC := binary.LittleEndian.Uint32(tr[16:])
	fileLen := uint64(len(data) - trailerSize)
	if footerOff > fileLen || footerLen > fileLen-footerOff {
		return nil, corruptf("snap: footer span [%d,+%d) outside file", footerOff, footerLen)
	}
	footer := data[footerOff : footerOff+footerLen]
	if crc32.Checksum(footer, castagnoli) != footerCRC {
		return nil, corruptf("snap: footer checksum mismatch")
	}

	// Section table. All lengths are validated against the file before
	// anything is allocated or trusted.
	fr := &byteCursor{b: footer}
	count := fr.u64()
	if count > uint64(len(footer))/29 { // minimal entry: 8+0+8+8+4 bytes + 1 name byte
		return nil, corruptf("snap: implausible section count %d", count)
	}
	sections := make(map[string]span, count)
	for i := uint64(0); i < count; i++ {
		nameLen := fr.u64()
		if nameLen > 256 {
			return nil, corruptf("snap: section %d: name length %d", i, nameLen)
		}
		name := string(fr.bytes(int(nameLen)))
		off := fr.u64()
		length := fr.u64()
		crc := fr.u32()
		if fr.err {
			return nil, corruptf("snap: section table truncated at entry %d", i)
		}
		if off > footerOff || length > footerOff-off {
			return nil, corruptf("snap: section %q span [%d,+%d) outside file", name, off, length)
		}
		if _, dup := sections[name]; dup {
			return nil, corruptf("snap: duplicate section %q", name)
		}
		if crc32.Checksum(data[off:off+length], castagnoli) != crc {
			return nil, corruptf("snap: section %q checksum mismatch", name)
		}
		sections[name] = span{off: off, len: length}
	}
	if fr.err || fr.pos != len(footer) {
		return nil, corruptf("snap: section table length mismatch")
	}
	return &Mapping{data: data, sections: sections, mmapped: mmapped}, nil
}

// Close releases the mapping. Every slice aliased out of it becomes
// invalid; only call it once all structures opened from the snapshot
// are unreachable. Close is idempotent.
func (m *Mapping) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	if m.mmapped {
		data := m.data
		m.data = nil
		return unmap(data)
	}
	m.data = nil
	return nil
}

// Mmapped reports whether the snapshot is served from a memory mapping
// (true) or a copy-on-read buffer (false).
func (m *Mapping) Mmapped() bool { return m.mmapped }

// Size reports the snapshot size in bytes.
func (m *Mapping) Size() int { return len(m.data) }

// Sections lists the section names present in the file.
func (m *Mapping) Sections() []string {
	out := make([]string, 0, len(m.sections))
	for name := range m.sections {
		out = append(out, name)
	}
	return out
}

// Section returns a cursor over the named section's fields. The section
// payload was checksum-verified at Open.
func (m *Mapping) Section(name string) (*Cursor, error) {
	s, ok := m.sections[name]
	if !ok {
		return nil, corruptf("snap: missing section %q", name)
	}
	return &Cursor{name: name, b: m.data[s.off : s.off+s.len]}, nil
}

// byteCursor is the minimal bounds-checked reader used for the footer.
type byteCursor struct {
	b   []byte
	pos int
	err bool
}

func (c *byteCursor) bytes(n int) []byte {
	if c.err || n < 0 || len(c.b)-c.pos < n {
		c.err = true
		return nil
	}
	out := c.b[c.pos : c.pos+n]
	c.pos += n
	return out
}

func (c *byteCursor) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *byteCursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Cursor reads a section's fields in the order the Writer appended
// them. Errors are sticky: after the first malformed field every
// subsequent read returns zero values, and Err reports the failure —
// callers read a whole section and check once. Array reads alias the
// mapping on little-endian hosts (no allocation, no copy).
type Cursor struct {
	name string
	b    []byte
	pos  int
	err  error
}

// Err returns the first error the cursor hit, nil when every read so
// far was in bounds.
func (c *Cursor) Err() error { return c.err }

func (c *Cursor) fail(what string) {
	if c.err == nil {
		c.err = corruptf("snap: section %q: truncated %s at offset %d", c.name, what, c.pos)
	}
}

func (c *Cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || len(c.b)-c.pos < n {
		c.fail("field")
		return nil
	}
	out := c.b[c.pos : c.pos+n]
	c.pos += n
	return out
}

func (c *Cursor) pad8() {
	if rem := c.pos % 8; rem != 0 {
		c.take(8 - rem)
	}
}

// U64 reads one scalar.
func (c *Cursor) U64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// arrayBody reads a count-prefixed array payload of elemSize-byte
// elements and returns its raw bytes. The count is validated against
// the remaining section bytes before anything is sliced, so a corrupt
// length can never cause an over-read or an allocation.
func (c *Cursor) arrayBody(elemSize int) []byte {
	n := c.U64()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.b)-c.pos)/uint64(elemSize) {
		c.fail("array")
		return nil
	}
	b := c.take(int(n) * elemSize)
	c.pad8()
	return b
}

// Bytes reads a length-prefixed byte array, aliased from the mapping.
func (c *Cursor) Bytes() []byte { return c.arrayBody(1) }

// String reads a length-prefixed string, copying (section names and
// small metadata only — bulk strings stay as aliased Bytes blobs).
func (c *Cursor) String() string { return string(c.arrayBody(1)) }

// U32s reads a length-prefixed []uint32.
func (c *Cursor) U32s() []uint32 { return aliasU32s(c.arrayBody(4)) }

// I32s reads a length-prefixed []int32.
func (c *Cursor) I32s() []int32 { return aliasI32s(c.arrayBody(4)) }

// F64s reads a length-prefixed []float64.
func (c *Cursor) F64s() []float64 { return aliasF64s(c.arrayBody(8)) }

// RecordBytes reads a length-prefixed array of elemSize-byte records
// and returns the raw payload plus the record count. Callers alias it
// as their own record type when the host layout matches, or decode
// record by record otherwise.
func (c *Cursor) RecordBytes(elemSize int) ([]byte, int) {
	b := c.arrayBody(elemSize)
	return b, len(b) / max(elemSize, 1)
}
