// Package snap defines the versioned on-disk binary format for a
// complete frozen generation — the serving fast path behind instant
// restarts and fleet-wide generation shipping.
//
// A snapshot file is a sequence of named sections followed by a footer:
//
//	header   magic "PVTESNAP", format version (uint32), layout marker
//	section* payload bytes, 8-byte aligned, individually CRC-32C checksummed
//	footer   section table: name, offset, length, checksum per section
//	trailer  fixed 28 bytes: footer offset/length, footer checksum, end magic
//
// Readers locate the footer by seeking to the trailer, verify every
// section checksum once, and then serve each section zero-copy: all
// integers are little-endian and every array field starts 8-byte
// aligned, so a mapped []byte can be aliased directly as []uint32,
// []float64 or fixed-size record slices on little-endian hosts (the
// overwhelmingly common case; a copy-decode fallback covers the rest).
// Combined with mmap (see Open), cold start is O(page faults) plus one
// header/checksum pass instead of O(rebuild).
//
// Within a section, fields are sequential: scalars are raw uint64s and
// arrays are a uint64 element count followed by the element bytes,
// padded to the next 8-byte boundary. The Writer and Cursor types
// implement the two directions; corruption of any kind — truncation,
// bad magic, length or checksum mismatch — surfaces as a typed error
// wrapping ErrCorrupt, never a panic and never an allocation sized by
// untrusted input.
package snap

import (
	"errors"
	"fmt"
)

const (
	// Magic opens every snapshot file.
	Magic = "PVTESNAP"
	// endMagic closes the trailer so truncation is detectable from the tail.
	endMagic = "PVTE_END"
	// Version is the current format version. Version 1 is the varint
	// N-Triples interchange snapshot (internal/rdf); the sectioned
	// generation format continues the numbering at 2, in the
	// {"version":2,...} op-log tradition.
	Version = 2
	// layoutMarker doubles as an endianness probe: it is written as a
	// little-endian uint32 and must read back as itself.
	layoutMarker = 0x01020304

	headerSize  = len(Magic) + 4 + 4 // magic + version + layout marker
	trailerSize = 8 + 8 + 4 + len(endMagic)
)

// ErrCorrupt is wrapped by every error caused by malformed snapshot
// bytes: truncation, bad magic, implausible lengths, checksum or layout
// mismatches, and out-of-bounds section reads. Callers distinguish
// "this file is bad" (fall back to a rebuild) from I/O errors with
// errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// ErrVersion is wrapped by errors caused by a well-formed header whose
// format version this build does not understand.
var ErrVersion = errors.New("snap: unsupported snapshot version")

func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}
