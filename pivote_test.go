package pivote_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pivote"
)

// demoGraph is shared across tests; generation is deterministic.
var demoGraph = pivote.GenerateDemo(150, 7)

func TestGenerateDemoContainsAnchors(t *testing.T) {
	for _, name := range []string{"Forrest_Gump", "Tom_Hanks", "Apollo_13", "Robert_Zemeckis"} {
		if demoGraph.EntityByName(name) == pivote.NoEntity {
			t.Fatalf("anchor %s missing", name)
		}
	}
}

func TestEndToEndScenario(t *testing.T) {
	eng := pivote.New(demoGraph, pivote.Options{TopEntities: 10, TopFeatures: 8})
	res := eng.Submit("forrest gump")
	if len(res.Entities) == 0 {
		t.Fatal("keyword search empty")
	}
	if res.Entities[0].Name != "Forrest Gump" {
		t.Fatalf("top hit %q", res.Entities[0].Name)
	}
	res = eng.AddSeed(res.Entities[0].Entity)
	if len(res.Entities) == 0 || len(res.Features) == 0 || res.Heat == nil {
		t.Fatal("investigation state incomplete")
	}
	res = eng.Pivot(demoGraph.EntityByName("Tom_Hanks"))
	if len(res.Query.Seeds) != 1 {
		t.Fatal("pivot did not reseed")
	}
	if _, err := eng.Revisit(1); err != nil {
		t.Fatal(err)
	}
	if eng.Session().Len() != 4 {
		t.Fatalf("timeline = %d actions, want 4", eng.Session().Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := pivote.SaveNTriples(demoGraph, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := pivote.LoadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Entities()) != len(demoGraph.Entities()) {
		t.Fatalf("entities after round trip: %d vs %d",
			len(g2.Entities()), len(demoGraph.Entities()))
	}
	// The reloaded graph answers the same query.
	eng := pivote.New(g2, pivote.Options{})
	res := eng.Submit("forrest gump")
	if len(res.Entities) == 0 || res.Entities[0].Name != "Forrest Gump" {
		t.Fatal("reloaded graph broken")
	}
}

func TestLoadNTriplesErrors(t *testing.T) {
	if _, err := pivote.LoadNTriples(strings.NewReader("garbage line")); err == nil {
		t.Fatal("no error for malformed input")
	}
	if _, err := pivote.LoadNTriplesFile("/nonexistent/path.nt"); err == nil {
		t.Fatal("no error for missing file")
	}
}

func TestParseFeature(t *testing.T) {
	f, err := pivote.ParseFeature(demoGraph, "Tom_Hanks:starring")
	if err != nil {
		t.Fatal(err)
	}
	if f.Dir != pivote.Backward || f.Anchor != demoGraph.EntityByName("Tom_Hanks") {
		t.Fatalf("parsed %+v", f)
	}
	if got := pivote.FeatureLabel(demoGraph, f); got != "Tom_Hanks:starring" {
		t.Fatalf("round trip label %q", got)
	}

	ff, err := pivote.ParseFeature(demoGraph, "Forrest_Gump:~starring")
	if err != nil {
		t.Fatal(err)
	}
	if ff.Dir != pivote.Forward {
		t.Fatal("forward direction not parsed")
	}
	if got := pivote.FeatureLabel(demoGraph, ff); got != "Forrest_Gump:~starring" {
		t.Fatalf("forward label %q", got)
	}
}

func TestParseFeatureErrors(t *testing.T) {
	for _, bad := range []string{"", "noseparator", ":starring", "Tom_Hanks:", "Nobody:starring", "Tom_Hanks:nosuchpred"} {
		if _, err := pivote.ParseFeature(demoGraph, bad); err == nil {
			t.Fatalf("no error for %q", bad)
		}
	}
}

func TestFeatureConditionThroughPublicAPI(t *testing.T) {
	eng := pivote.New(demoGraph, pivote.Options{})
	f, err := pivote.ParseFeature(demoGraph, "Tom_Hanks:starring")
	if err != nil {
		t.Fatal(err)
	}
	res := eng.AddFeature(f)
	if len(res.Entities) < 5 {
		t.Fatalf("Tom_Hanks:starring returned %d films", len(res.Entities))
	}
	for _, r := range res.Entities {
		if !eng.Features().Holds(r.Entity, f) {
			t.Fatalf("%s does not star Tom Hanks", r.Name)
		}
	}
}

func ExampleNew() {
	g := pivote.GenerateDemo(100, 42)
	eng := pivote.New(g, pivote.Options{TopEntities: 5})
	res := eng.Submit("forrest gump")
	fmt.Println(res.Entities[0].Name)
	// Output: Forrest Gump
}

func ExampleParseFeature() {
	g := pivote.GenerateDemo(100, 42)
	f, _ := pivote.ParseFeature(g, "Tom_Hanks:starring")
	eng := pivote.New(g, pivote.Options{})
	res := eng.AddFeature(f)
	fmt.Println(len(res.Entities) >= 5)
	// Output: true
}
