// Package pivote is a Go implementation of PivotE, the entity-oriented
// exploratory search system for knowledge graphs presented in:
//
//	Xueran Han, Jun Chen, Jiaheng Lu, Yueguo Chen, Xiaoyong Du.
//	PivotE: Revealing and Visualizing the Underlying Entity Structures
//	for Exploration. PVLDB 12(12): 1966–1969, 2019.
//
// PivotE lets users explore a knowledge graph without writing SPARQL:
// starting from a keyword query, the system recommends entities (the
// x-axis of its matrix interface) and semantic features — anchor entity +
// directional predicate pairs such as Tom_Hanks:starring — (the y-axis),
// explains their correlation with a seven-level heat map, and supports
// two core operations: investigation (expanding entities of the same
// type from examples) and pivoting (jumping to a different entity domain
// through a feature's anchor).
//
// # Quick start
//
// Every interaction is one of eight serializable operations applied
// through the engine's single entry point:
//
//	g := pivote.GenerateDemo(1000, 42)         // synthetic DBpedia-like KG
//	eng := pivote.New(g, pivote.Options{})
//	ctx := context.Background()
//	res, _ := eng.Apply(ctx, pivote.OpSubmit("forrest gump")) // keyword search
//	res, _ = eng.Apply(ctx, pivote.OpAddSeed(res.Entities[0].Entity)) // investigate
//	fmt.Println(res.RenderASCII())             // all five UI areas
//	res, _ = eng.Apply(ctx, pivote.OpPivot(g.EntityByName("Tom_Hanks"))) // browse
//
// Apply validates the op (typed errors: NotFound/Invalid/Canceled/
// Internal), honors context cancellation inside the expensive ranking
// loops, and records the op in a replayable log — a saved session is
// nothing but that []Op. The legacy method spellings (eng.Submit,
// eng.AddSeed, ...) remain as one-line conveniences over Apply.
//
// Real data loads from N-Triples via LoadNTriples; the vocabulary
// (rdf:type, rdfs:label, dct:subject, dbo:wikiPageRedirects, ...) matches
// DBpedia dumps.
//
// The exported names are aliases of the implementation packages under
// internal/, re-exported here as the supported surface.
package pivote

import (
	"fmt"
	"io"
	"os"
	"strings"

	"pivote/internal/bgp"
	"pivote/internal/core"
	"pivote/internal/expand"
	"pivote/internal/heatmap"
	"pivote/internal/kg"
	"pivote/internal/live"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/semfeat"
	"pivote/internal/session"
	"pivote/internal/synth"
)

// Core engine surface.
type (
	// Engine is the PivotE system: search + recommendation + session.
	Engine = core.Engine
	// Options configure an Engine.
	Options = core.Options
	// Result is the assembled interface state (the five areas of the
	// paper's Fig. 3).
	Result = core.Result

	// Graph is the knowledge-graph view used by every component.
	Graph = kg.Graph
	// Profile is an entity's presentation-area content.
	Profile = kg.Profile

	// EntityID identifies an entity (a dictionary-encoded term).
	EntityID = rdf.TermID

	// Feature is a semantic feature π = (anchor, predicate, direction).
	Feature = semfeat.Feature
	// FeatureScore is a feature with its relevance r(π,Q).
	FeatureScore = semfeat.Score
	// FeatureCatalog is the frozen per-generation feature catalog: the
	// dense FeatureID space with flat extent/adjacency/back-off arrays
	// that semantic-feature ranking scatters over.
	FeatureCatalog = semfeat.Catalog
	// FeatureID is a dense catalog-local feature identifier.
	FeatureID = semfeat.FeatureID

	// RankedEntity is one recommended entity.
	RankedEntity = expand.Ranked

	// HeatMap is the seven-level correlation matrix of the explanation
	// area.
	HeatMap = heatmap.Matrix

	// Query is the reformulable query state; Action one timeline step.
	Query  = session.Query
	Action = session.Action

	// Op is one serializable operation of the protocol; OpKind its
	// discriminator and OpDTO its symbolic wire form.
	Op     = core.Op
	OpKind = core.OpKind
	OpDTO  = core.OpDTO

	// Fields selects which interface areas Apply/Evaluate assemble.
	Fields = core.Fields

	// EngineError is the typed error every Apply failure carries;
	// ErrKind is its taxonomy.
	EngineError = core.Error
	ErrKind     = core.ErrKind

	// SearchModel selects the keyword-retrieval model.
	SearchModel = search.Model
	// SearchParams are the retrieval hyperparameters.
	SearchParams = search.Params

	// BGPQuery is a SPARQL-style basic graph pattern — the structured
	// access path the paper contrasts exploration against.
	BGPQuery = bgp.Query
	// BGPBinding is one result row of a BGP query.
	BGPBinding = bgp.Binding
)

// Feature directions.
const (
	// Backward anchors the feature at the triple object
	// (Tom_Hanks:starring = films starring Tom Hanks).
	Backward = semfeat.Backward
	// Forward anchors it at the subject (Forrest_Gump:~starring = the
	// cast of Forrest Gump).
	Forward = semfeat.Forward
)

// Retrieval models.
const (
	// ModelMLM is the paper's five-field mixture of language models.
	ModelMLM = search.ModelMLM
	// ModelBM25F, ModelLMNames and ModelBoolean are baselines.
	ModelBM25F   = search.ModelBM25F
	ModelLMNames = search.ModelLMNames
	ModelBoolean = search.ModelBoolean
)

// NoEntity is the zero EntityID, returned by failed lookups.
const NoEntity = rdf.NoTerm

// Operation kinds (the wire values of the protocol).
const (
	OpKindSubmit        = core.OpKindSubmit
	OpKindAddSeed       = core.OpKindAddSeed
	OpKindRemoveSeed    = core.OpKindRemoveSeed
	OpKindAddFeature    = core.OpKindAddFeature
	OpKindRemoveFeature = core.OpKindRemoveFeature
	OpKindLookup        = core.OpKindLookup
	OpKindPivot         = core.OpKindPivot
	OpKindRevisit       = core.OpKindRevisit
)

// Error kinds of the typed taxonomy.
const (
	KindNotFound = core.KindNotFound
	KindInvalid  = core.KindInvalid
	KindCanceled = core.KindCanceled
	KindInternal = core.KindInternal
)

// Result field selectors for Engine.ApplyFields / EvaluateCtx.
const (
	FieldEntities = core.FieldEntities
	FieldFeatures = core.FieldFeatures
	FieldHeatmap  = core.FieldHeatmap
	FieldTimeline = core.FieldTimeline
	FieldNone     = core.FieldNone
	FieldsAll     = core.FieldsAll
)

// Op constructors — one per operation of the protocol.
var (
	OpSubmit        = core.OpSubmit
	OpAddSeed       = core.OpAddSeed
	OpRemoveSeed    = core.OpRemoveSeed
	OpAddFeature    = core.OpAddFeature
	OpRemoveFeature = core.OpRemoveFeature
	OpLookup        = core.OpLookup
	OpPivot         = core.OpPivot
	OpRevisit       = core.OpRevisit
)

// ParseFields parses a comma-separated field selection, e.g.
// "entities,heatmap"; the empty string selects everything.
func ParseFields(s string) (Fields, error) { return core.ParseFields(s) }

// ErrKindOf classifies any error returned by the engine.
func ErrKindOf(err error) ErrKind { return core.KindOf(err) }

// EncodeOp converts an op to its symbolic wire form (IRIs and feature
// labels), the inverse of DecodeOp. An op log encoded this way is the
// session-file format and the /api/v1/ops request body.
func EncodeOp(g *Graph, op Op) OpDTO { return core.EncodeOp(g, op) }

// DecodeOp resolves a wire op against the graph.
func DecodeOp(g *Graph, d OpDTO) (Op, error) { return core.DecodeOp(g, d) }

// SharedCore is the session-independent read core (graph, search index,
// feature cache), safe for concurrent use and shared by all sessions of
// a process. It is generation-aware: see NewLiveShared for the write
// path.
type SharedCore = core.Shared

// Live-ingest surface: the generational write path of internal/live.
type (
	// LiveStore is the generational graph store: an immutable current
	// generation plus a delta log of pending writes, compacted into fresh
	// generations with an RCU swap.
	LiveStore = live.Store
	// LiveGeneration is one immutable graph generation (store, KG
	// tables, search index, feature cache).
	LiveGeneration = live.Generation
	// LiveView is a consistent read snapshot: one generation plus the
	// pending delta, resolved through a merged overlay.
	LiveView = live.View
	// IngestResult reports what one ingest batch did.
	IngestResult = live.IngestResult
)

// NewLiveShared is NewShared with the write path enabled: the returned
// core accepts ingest batches (sh.Live().Ingest / IngestNTriples) and
// runs a background compactor that folds them into fresh generations
// without ever blocking readers. Call Close on shutdown.
func NewLiveShared(g *Graph, opts Options) *SharedCore { return core.NewLiveShared(g, opts) }

// New builds a PivotE engine over a graph. The engine is stateful (it
// owns a session); mutating operations are serialized per session by the
// HTTP server, while the underlying read core is concurrency-safe.
func New(g *Graph, opts Options) *Engine { return core.New(g, opts) }

// NewShared builds the shared read core once; attach per-user sessions
// with NewWithShared.
func NewShared(g *Graph, opts Options) *SharedCore { return core.NewShared(g, opts) }

// NewWithShared attaches a fresh session engine to a shared core —
// cheap enough to call per request.
func NewWithShared(sh *SharedCore, opts Options) *Engine { return core.NewWithShared(sh, opts) }

// GenerateDemo builds the deterministic synthetic DBpedia-like graph used
// by the examples and experiments: scale is the film count (total
// entities ≈ 2.2×scale) and seed drives all randomness. The paper's
// running examples (Forrest_Gump, Tom_Hanks, ...) are embedded at every
// scale.
func GenerateDemo(scale int, seed int64) *Graph {
	cfg := synth.Scaled(scale)
	cfg.Seed = seed
	return synth.Generate(cfg).Graph
}

// LoadNTriples reads an N-Triples stream into a new Graph.
func LoadNTriples(r io.Reader) (*Graph, error) {
	st := rdf.NewStore(nil)
	if _, err := rdf.ReadNTriples(st, r); err != nil {
		return nil, fmt.Errorf("pivote: %w", err)
	}
	st.Freeze()
	return kg.NewGraph(st), nil
}

// LoadNTriplesFile reads an N-Triples file into a new Graph.
func LoadNTriplesFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pivote: %w", err)
	}
	defer f.Close()
	return LoadNTriples(f)
}

// SaveNTriples writes the graph's triples as N-Triples.
func SaveNTriples(g *Graph, w io.Writer) error {
	return rdf.WriteNTriples(g.Store(), w)
}

// SaveSnapshot writes the graph in the binary snapshot format — the fast
// path for repeatedly serving the same graph (no parsing or re-interning
// on load).
func SaveSnapshot(g *Graph, w io.Writer) error {
	return rdf.WriteSnapshot(g.Store(), w)
}

// LoadSnapshot reads a binary snapshot written by SaveSnapshot.
func LoadSnapshot(r io.Reader) (*Graph, error) {
	st, err := rdf.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("pivote: %w", err)
	}
	return kg.NewGraph(st), nil
}

// LoadGraphFile loads either format by extension: ".snap" snapshots, and
// anything else as N-Triples.
func LoadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pivote: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".snap") {
		return LoadSnapshot(f)
	}
	return LoadNTriples(f)
}

// Generation-snapshot surface: the sectioned serving format (v2). Where
// SaveSnapshot persists only the triples (and LoadSnapshot re-derives
// every index), SaveGeneration persists a complete frozen generation —
// dictionary, CSR store, KG tables, search index and feature catalog —
// and OpenGeneration maps it back with zero-copy array aliasing, so a
// process restart skips every build pass.

// SaveGeneration atomically writes a complete generation snapshot to
// path (conventionally with the ".pvgen" extension).
func SaveGeneration(gen *LiveGeneration, path string) error {
	return live.WriteGenerationFile(gen, path)
}

// OpenGeneration memory-maps a generation snapshot written by
// SaveGeneration (or by a live store's SnapshotDir publication). The
// returned generation serves immediately; wrap it with
// NewSharedFromGeneration (or NewLiveSharedFromGeneration) to attach
// sessions. The underlying mapping stays open for the generation's
// lifetime.
func OpenGeneration(path string) (*LiveGeneration, error) {
	return live.OpenGeneration(path)
}

// FindNewestSnapshot returns the highest-generation snapshot in dir, or
// "" when there is none.
func FindNewestSnapshot(dir string) (string, error) {
	return live.FindNewestSnapshot(dir)
}

// SnapshotPath returns the canonical snapshot file name for a
// generation number inside dir (zero-padded so lexicographic order is
// generation order).
func SnapshotPath(dir string, gen uint64) string {
	return live.SnapshotPath(dir, gen)
}

// NewSharedFromGeneration builds the shared read core from an opened
// generation snapshot — no rebuild of any derived structure.
func NewSharedFromGeneration(gen *LiveGeneration, opts Options) *SharedCore {
	return core.NewSharedFromGeneration(gen, opts)
}

// NewLiveSharedFromGeneration is NewSharedFromGeneration with the write
// path enabled; compaction swaps publish fresh snapshots to snapshotDir
// when it is non-empty.
func NewLiveSharedFromGeneration(gen *LiveGeneration, opts Options, snapshotDir string) *SharedCore {
	return core.NewLiveSharedFromGeneration(gen, opts, snapshotDir)
}

// NewLiveSharedWithSnapshots is NewLiveShared with compaction snapshots
// published to snapshotDir.
func NewLiveSharedWithSnapshots(g *Graph, opts Options, snapshotDir string) *SharedCore {
	return core.NewLiveSharedWithSnapshots(g, opts, snapshotDir)
}

// FeatureLabel renders a feature in the paper's anchor:predicate
// notation.
func FeatureLabel(g *Graph, f Feature) string { return semfeat.Label(g, f) }

// ParseFeature resolves "Anchor:predicate" / "Anchor:~predicate" notation
// against the graph (local names or full IRIs), the inverse of
// FeatureLabel.
func ParseFeature(g *Graph, s string) (Feature, error) {
	return semfeat.Parse(g, s)
}

// ParseBGP parses a SPARQL-like basic-graph-pattern query, e.g.
//
//	SELECT ?film WHERE { ?film starring Tom_Hanks . ?film director Robert_Zemeckis }
func ParseBGP(g *Graph, query string) (BGPQuery, error) {
	return bgp.Parse(g, query)
}

// ExecuteBGP evaluates a basic graph pattern and returns the variable
// bindings, deterministically ordered.
func ExecuteBGP(g *Graph, q BGPQuery) ([]BGPBinding, error) {
	return bgp.Execute(g.Store(), q)
}
